#include "mem/sram.hpp"

#include <stdexcept>
#include <string>

namespace prt::mem {

SimRam::SimRam(Addr cells, unsigned width_bits, unsigned port_count)
    : size_(cells),
      width_(width_bits),
      ports_(port_count),
      data_(cells, 0) {
  // Runtime throws, not asserts: the per-port arrays hold 4 entries,
  // so an unchecked port_count would read/write out of bounds in
  // release builds (same for the width shifts).
  if (cells < 1) {
    throw std::invalid_argument("SimRam: cells must be >= 1");
  }
  if (width_bits < 1 || width_bits > 32) {
    throw std::invalid_argument("SimRam: width_bits must be in [1, 32], got " +
                                std::to_string(width_bits));
  }
  if (port_count != 1 && port_count != 2 && port_count != 4) {
    throw std::invalid_argument("SimRam: port_count must be 1, 2 or 4, got " +
                                std::to_string(port_count));
  }
}

Word SimRam::read(Addr addr, unsigned port) {
  assert(addr < size_ && port < ports_);
  ++stats_[port].reads;
  return data_[addr];
}

void SimRam::write(Addr addr, Word value, unsigned port) {
  assert(addr < size_ && port < ports_);
  ++stats_[port].writes;
  data_[addr] = value & word_mask();
}

void SimRam::fill(Word value) {
  const Word v = value & word_mask();
  for (auto& cell : data_) cell = v;
}

}  // namespace prt::mem
