// BIST design assistant: given a memory geometry, picks the field and
// generator polynomials, synthesizes the constant-multiplier XOR
// network, estimates the silicon overhead (§4), and searches for a
// good TDB with the greedy designer — everything a designer needs to
// instantiate PRT for a new RAM.
//
//   $ ./bist_designer [n] [m]
#include <cstdio>
#include <cstdlib>

#include "analysis/tdb_search.hpp"
#include "core/hw_overhead.hpp"
#include "gf/const_mult.hpp"
#include "gf/gf2m_poly.hpp"
#include "mem/fault_universe.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace prt;
  const mem::Addr n =
      argc > 1 ? static_cast<mem::Addr>(std::atoi(argv[1])) : 4096;
  const unsigned m = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 8;

  // 1. Field selection: first primitive p(z) of degree m.
  const gf::Poly2 p = gf::first_primitive(m);
  const gf::GF2m field(p);
  std::printf("memory: %u cells x %u bits\n", n, m);
  std::printf("field modulus p(z) = %s (primitive)\n",
              gf::poly_to_string(p).c_str());

  // 2. Generator selection: first primitive quadratic over GF(2^m)
  // (maximal ring period q^2 - 1).
  const auto g = gf::find_irreducible(field, 2, /*primitive=*/true);
  if (!g) {
    std::printf("no primitive quadratic found (unexpected)\n");
    return 1;
  }
  std::printf("generator g(x) = %s, virtual-LFSR period %llu\n",
              gf::poly_to_string(field, *g).c_str(),
              static_cast<unsigned long long>(gf::order_of_x(field, *g)));

  // 3. Multiplier synthesis for each non-trivial coefficient.
  Table mult({"coefficient", "naive XORs", "CSE XORs", "depth"});
  for (std::size_t j = 1; j < g->coeffs.size(); ++j) {
    const gf::Elem c = g->coeffs[j];
    if (c <= 1) continue;
    const gf::MatrixGF2 mat = gf::multiplier_matrix(field, c);
    const gf::XorNetwork naive = gf::synthesize_naive(mat);
    const gf::XorNetwork cse = gf::synthesize_cse(mat);
    mult.add(field.to_hex(c), naive.gate_count(), cse.gate_count(),
             cse.depth());
  }
  if (mult.rows() == 0) {
    std::printf("\nconstant multipliers: all feedback coefficients are 1 "
                "-- pure wiring, no XOR gates needed\n");
  } else {
    std::printf("\nconstant multipliers:\n%s", mult.str().c_str());
  }

  // 4. Overhead estimate (§4).
  const core::OverheadReport report =
      core::estimate_overhead(field, g->coeffs, n, /*ports=*/1);
  std::printf("\nBIST overhead: %llu transistors vs %llu memory "
              "transistors -> ratio %s\n",
              static_cast<unsigned long long>(report.bist_total()),
              static_cast<unsigned long long>(report.memory_transistors),
              format_pow2_ratio(report.ratio()).c_str());

  // 5. TDB search on a scaled-down proxy (same structure, small n so
  // the exhaustive campaign stays interactive).  The proxy universe
  // carries the single-cell, read-logic, intra-word and decoder
  // faults the per-iteration TDB actually controls; coupling coverage
  // is the scheme-level concern of extended_scheme_* (EXPERIMENTS.md).
  const mem::Addr proxy_n = 24;
  mem::UniverseOptions uopt;
  uopt.read_logic = true;
  uopt.coupling = false;
  uopt.bridges = false;
  uopt.intra_word = true;
  const auto universe = mem::make_universe(proxy_n, m, uopt);
  analysis::CampaignOptions opt;
  opt.n = proxy_n;
  opt.m = m;
  const auto pool = analysis::default_candidates(field, g->coeffs);
  const auto search =
      analysis::search_tdb(field, pool, universe, opt, /*iterations=*/4);
  std::printf("\ngreedy TDB search on a %u-cell proxy (%zu faults):\n",
              proxy_n, universe.size());
  for (std::size_t i = 0; i < search.coverage_by_iterations.size(); ++i) {
    const auto& it = search.scheme.iterations[i];
    std::printf("  iteration %zu: g0..gk = (", i + 1);
    for (std::size_t j = 0; j < it.g.size(); ++j) {
      std::printf("%s%s", j ? "," : "", field.to_hex(it.g[j]).c_str());
    }
    std::printf(") init = (%s,%s) %s -> coverage %.2f%%\n",
                field.to_hex(it.config.init[0]).c_str(),
                field.to_hex(it.config.init[1]).c_str(),
                core::to_string(it.config.trajectory),
                search.coverage_by_iterations[i]);
  }
  std::printf("escapes after %zu iterations: %zu\n",
              search.scheme.iterations.size(), search.escapes.size());
  return 0;
}
