// Tests for utility components (util/*).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

#include "util/bitops.hpp"
#include "util/crc32.hpp"
#include "util/fail_point.hpp"
#include "util/rng.hpp"
#include "util/stop_token.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/watchdog.hpp"

namespace prt {
namespace {

// --- bitops ---------------------------------------------------------------

TEST(Bitops, Parity) {
  EXPECT_EQ(parity64(0), 0u);
  EXPECT_EQ(parity64(1), 1u);
  EXPECT_EQ(parity64(0b11), 0u);
  EXPECT_EQ(parity64(~0ULL), 0u);
  EXPECT_EQ(parity64(0x8000000000000001ULL), 0u);
  EXPECT_EQ(parity64(0x8000000000000000ULL), 1u);
}

TEST(Bitops, BitOfAndWithBit) {
  EXPECT_EQ(bit_of(0b1010, 1), 1u);
  EXPECT_EQ(bit_of(0b1010, 0), 0u);
  EXPECT_EQ(with_bit(0, 3, 1), 0b1000u);
  EXPECT_EQ(with_bit(0b1111, 2, 0), 0b1011u);
}

TEST(Bitops, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(4), 0xFu);
  EXPECT_EQ(low_mask(64), ~0ULL);
}

TEST(Bitops, PolyDegree) {
  EXPECT_EQ(poly_degree(0), -1);
  EXPECT_EQ(poly_degree(1), 0);
  EXPECT_EQ(poly_degree(0b10011), 4);
  EXPECT_EQ(poly_degree(1ULL << 63), 63);
}

TEST(Bitops, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Bitops, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
}

// --- rng --------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  Xoshiro256 c(43);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool differs = false;
  Xoshiro256 a2(42);
  for (int i = 0; i < 10; ++i) differs |= a2() != c();
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RoughUniformity) {
  Xoshiro256 rng(11);
  std::array<int, 4> bucket{};
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) ++bucket[rng.below(4)];
  for (int b : bucket) {
    EXPECT_NEAR(b, draws / 4, draws / 40);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  Xoshiro256 rng(3);
  shuffle(v.begin(), v.end(), rng);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 8u);
}

// --- table ---------------------------------------------------------------

TEST(TableTest, RendersHeaderSeparatorRows) {
  Table t({"name", "value"});
  t.add("alpha", 1);
  t.add("beta", 2.5);
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.500"), std::string::npos);
  EXPECT_NE(s.find("|--"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(TableTest, AlignmentPadsCorrectly) {
  Table t({"h"});
  t.set_align(0, Align::kLeft);
  t.add_row({"x"});
  t.add_row({"xxxx"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| x    |"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.add(1, 2);
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(TableTest, BoolCells) {
  Table t({"flag"});
  t.add(true);
  t.add(false);
  const std::string s = t.str();
  EXPECT_NE(s.find("yes"), std::string::npos);
  EXPECT_NE(s.find("no"), std::string::npos);
}

TEST(TableTest, ScientificForExtremes) {
  EXPECT_NE(Table::to_cell(1e-9).find("e"), std::string::npos);
  EXPECT_NE(Table::to_cell(3.5e12).find("e"), std::string::npos);
  EXPECT_EQ(Table::to_cell(0.0), "0.000");
}

TEST(Formatting, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(100.0, 0), "100");
}

TEST(Formatting, FormatPow2Ratio) {
  EXPECT_EQ(format_pow2_ratio(0.25), "2^-2.0");
  EXPECT_EQ(format_pow2_ratio(1.0), "2^0.0");
  EXPECT_EQ(format_pow2_ratio(0.0), "0");
}

// --- fail points ----------------------------------------------------------

TEST(FailPoint, DisarmedHitIsANoOp) {
  util::FailPoint::hit("nothing.armed");  // must not throw
  EXPECT_EQ(util::FailPoint::hits("nothing.armed"), 0u);
}

TEST(FailPoint, SkipAndFiresSchedule) {
  util::FailPointScope scope;
  util::FailPoint::arm("test.point", {.skip = 2, .fires = 1});
  util::FailPoint::hit("test.point");  // hit 0: skipped
  util::FailPoint::hit("test.point");  // hit 1: skipped
  EXPECT_THROW(util::FailPoint::hit("test.point"), util::FailPointError);
  util::FailPoint::hit("test.point");  // hit 3: past the fire window
  EXPECT_EQ(util::FailPoint::hits("test.point"), 4u);
}

TEST(FailPoint, UnboundedFiresAndDisarm) {
  util::FailPointScope scope;
  util::FailPoint::arm("test.unbounded", {.fires = -1});
  EXPECT_THROW(util::FailPoint::hit("test.unbounded"), util::FailPointError);
  EXPECT_THROW(util::FailPoint::hit("test.unbounded"), util::FailPointError);
  util::FailPoint::disarm("test.unbounded");
  util::FailPoint::hit("test.unbounded");  // disarmed: no-op
}

TEST(FailPoint, DelayActionSleeps) {
  util::FailPointScope scope;
  util::FailPoint::arm("test.delay",
                       {.action = util::FailPoint::Action::kDelay,
                        .fires = 1,
                        .delay = std::chrono::milliseconds(10)});
  const auto start = std::chrono::steady_clock::now();
  util::FailPoint::hit("test.delay");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(9));
}

// --- fail point spec strings ----------------------------------------------

TEST(FailPointSpec, PlainThrowFiresOnce) {
  util::FailPointScope scope;
  util::FailPoint::arm_spec("spec.throw=throw");
  EXPECT_THROW(util::FailPoint::hit("spec.throw"), util::FailPointError);
  util::FailPoint::hit("spec.throw");  // fires defaults to 1
}

TEST(FailPointSpec, SkipAndFiresModifiers) {
  util::FailPointScope scope;
  util::FailPoint::arm_spec("spec.sched=throw:skip=2:fires=1");
  util::FailPoint::hit("spec.sched");
  util::FailPoint::hit("spec.sched");
  EXPECT_THROW(util::FailPoint::hit("spec.sched"), util::FailPointError);
  util::FailPoint::hit("spec.sched");
  EXPECT_EQ(util::FailPoint::hits("spec.sched"), 4u);
}

TEST(FailPointSpec, ModifierOrderIsFree) {
  util::FailPointScope scope;
  util::FailPoint::arm_spec("spec.order=throw:fires=-1:skip=1");
  util::FailPoint::hit("spec.order");
  EXPECT_THROW(util::FailPoint::hit("spec.order"), util::FailPointError);
  EXPECT_THROW(util::FailPoint::hit("spec.order"), util::FailPointError);
}

TEST(FailPointSpec, DelayActionParsesMilliseconds) {
  util::FailPointScope scope;
  util::FailPoint::arm_spec("spec.delay=delay(10):fires=1");
  const auto start = std::chrono::steady_clock::now();
  util::FailPoint::hit("spec.delay");
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(9));
}

TEST(FailPointSpec, MalformedSpecsThrowInvalidArgument) {
  util::FailPointScope scope;
  // Missing '=' separator.
  EXPECT_THROW(util::FailPoint::arm_spec("no-separator"),
               std::invalid_argument);
  // Empty name.
  EXPECT_THROW(util::FailPoint::arm_spec("=throw"), std::invalid_argument);
  // Unknown action.
  EXPECT_THROW(util::FailPoint::arm_spec("p=explode"), std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p="), std::invalid_argument);
  // Malformed skip counts: non-numeric, empty, trailing junk, negative.
  EXPECT_THROW(util::FailPoint::arm_spec("p=throw:skip=x"),
               std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p=throw:skip="),
               std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p=throw:skip=1junk"),
               std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p=throw:skip=-1"),
               std::invalid_argument);
  // Malformed fires counts.
  EXPECT_THROW(util::FailPoint::arm_spec("p=throw:fires=many"),
               std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p=throw:fires="),
               std::invalid_argument);
  // Malformed delay payloads.
  EXPECT_THROW(util::FailPoint::arm_spec("p=delay()"), std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p=delay(abc)"),
               std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p=delay(5"), std::invalid_argument);
  // Unknown / duplicate modifiers.
  EXPECT_THROW(util::FailPoint::arm_spec("p=throw:bogus=1"),
               std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p=throw:skip=1:skip=2"),
               std::invalid_argument);
  // A rejected spec must arm nothing.
  util::FailPoint::hit("p");
  EXPECT_EQ(util::FailPoint::hits("p"), 0u);
  // Malformed partial_write payloads.
  EXPECT_THROW(util::FailPoint::arm_spec("p=partial_write()"),
               std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p=partial_write(abc)"),
               std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p=partial_write(-1)"),
               std::invalid_argument);
  EXPECT_THROW(util::FailPoint::arm_spec("p=partial_write(5"),
               std::invalid_argument);
}

TEST(FailPointSpec, PartialWriteParsesByteCount) {
  util::FailPointScope scope;
  util::FailPoint::arm_spec("spec.partial=partial_write(120):skip=1:fires=1");
  EXPECT_FALSE(util::FailPoint::poll("spec.partial").has_value());  // skipped
  const std::optional<util::FailPoint::Config> fired =
      util::FailPoint::poll("spec.partial");
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->action, util::FailPoint::Action::kPartialWrite);
  EXPECT_EQ(fired->bytes, 120u);
  EXPECT_FALSE(util::FailPoint::poll("spec.partial").has_value());  // spent
  EXPECT_EQ(util::FailPoint::hits("spec.partial"), 3u);
}

TEST(FailPoint, PollSharesScheduleWithHit) {
  util::FailPointScope scope;
  util::FailPoint::arm("test.poll", {.skip = 1, .fires = 1});
  EXPECT_FALSE(util::FailPoint::poll("test.never.armed").has_value());
  util::FailPoint::hit("test.poll");  // hit 0: skipped
  const std::optional<util::FailPoint::Config> fired =
      util::FailPoint::poll("test.poll");  // hit 1: fires
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->action, util::FailPoint::Action::kThrow);
  util::FailPoint::hit("test.poll");  // hit 2: past the window
}

TEST(FailPoint, PartialWriteAtPlainHitDegradesToThrow) {
  // A site without a byte stream cannot honor kPartialWrite; failing
  // hard beats silently ignoring the injection.
  util::FailPointScope scope;
  util::FailPoint::arm("test.pw",
                       {.action = util::FailPoint::Action::kPartialWrite,
                        .fires = 1,
                        .bytes = 10});
  EXPECT_THROW(util::FailPoint::hit("test.pw"), util::FailPointError);
}

// --- crc32 ----------------------------------------------------------------

TEST(Crc32, MatchesKnownVectorsAndDetectsFlips) {
  EXPECT_EQ(util::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(util::crc32(""), 0x00000000u);
  const std::string payload = "shard 3 ops 120 overall 9 10";
  std::string flipped = payload;
  flipped[10] ^= 0x01;
  EXPECT_NE(util::crc32(payload), util::crc32(flipped));
}

// --- stop tokens ----------------------------------------------------------

TEST(StopToken, DefaultTokenNeverStops) {
  const util::StopToken token;
  EXPECT_FALSE(token.stop_requested());
  EXPECT_EQ(token.reason(), util::StopReason::kNone);
}

TEST(StopToken, RequestStopLatchesCancelled) {
  util::StopSource source;
  const util::StopToken token = source.token();
  EXPECT_FALSE(token.stop_requested());
  source.request_stop();
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.reason(), util::StopReason::kCancelled);
}

TEST(StopToken, DeadlineTripsAndLatches) {
  util::StopSource source;
  source.set_deadline_after(std::chrono::milliseconds(5));
  const util::StopToken token = source.token();
  EXPECT_FALSE(token.stop_requested());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.reason(), util::StopReason::kDeadline);
  // First cause wins: a later cancel does not overwrite the reason.
  source.request_stop();
  EXPECT_EQ(token.reason(), util::StopReason::kDeadline);
}

TEST(StopToken, CancelBeforeDeadlineReportsCancelled) {
  util::StopSource source;
  source.set_deadline_after(std::chrono::hours(1));
  source.request_stop();
  EXPECT_TRUE(source.stop_requested());
  EXPECT_EQ(source.token().reason(), util::StopReason::kCancelled);
}

TEST(StopToken, RequestStopCarriesExplicitReason) {
  util::StopSource source;
  source.request_stop(util::StopReason::kStalled);
  EXPECT_TRUE(source.stop_requested());
  EXPECT_EQ(source.token().reason(), util::StopReason::kStalled);
  // First cause wins.
  source.request_stop(util::StopReason::kCancelled);
  EXPECT_EQ(source.token().reason(), util::StopReason::kStalled);
}

TEST(StopToken, ChildObservesParentStop) {
  util::StopSource parent;
  util::StopSource child(parent.token());
  EXPECT_FALSE(child.token().stop_requested());
  parent.request_stop();
  EXPECT_TRUE(child.token().stop_requested());
  EXPECT_EQ(child.token().reason(), util::StopReason::kCancelled);
  // The parent's reason latches into the child: a later local stop
  // with a different reason does not overwrite it.
  child.request_stop(util::StopReason::kStalled);
  EXPECT_EQ(child.token().reason(), util::StopReason::kCancelled);
}

TEST(StopToken, ChildStopDoesNotPropagateToParent) {
  util::StopSource parent;
  util::StopSource child(parent.token());
  child.request_stop(util::StopReason::kStalled);
  EXPECT_TRUE(child.token().stop_requested());
  EXPECT_EQ(child.token().reason(), util::StopReason::kStalled);
  EXPECT_FALSE(parent.token().stop_requested());
  EXPECT_EQ(parent.token().reason(), util::StopReason::kNone);
}

TEST(StopToken, ParentDeadlinePropagatesToChild) {
  util::StopSource parent;
  parent.set_deadline_after(std::chrono::milliseconds(5));
  util::StopSource child(parent.token());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(child.token().stop_requested());
  EXPECT_EQ(child.token().reason(), util::StopReason::kDeadline);
}

// --- watchdog -------------------------------------------------------------

TEST(Watchdog, ExpiresOverdueWatchExactlyOnce) {
  util::Watchdog dog;
  std::atomic<int> fired{0};
  (void)dog.watch(std::chrono::milliseconds(5), [&] { ++fired; });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fired.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(dog.expirations(), 1u);
  // An expired entry is gone; it never fires again.
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_EQ(fired.load(), 1);
}

TEST(Watchdog, UnwatchBeforeBudgetSuppressesCallback) {
  util::Watchdog dog;
  std::atomic<int> fired{0};
  const util::Watchdog::Id id =
      dog.watch(std::chrono::seconds(60), [&] { ++fired; });
  dog.unwatch(id);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(fired.load(), 0);
  EXPECT_EQ(dog.expirations(), 0u);
}

TEST(Watchdog, TracksManyWatchesIndependently) {
  util::Watchdog dog;
  std::atomic<int> fast_fired{0};
  std::atomic<int> slow_fired{0};
  (void)dog.watch(std::chrono::milliseconds(5), [&] { ++fast_fired; });
  const util::Watchdog::Id slow =
      dog.watch(std::chrono::seconds(60), [&] { ++slow_fired; });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fast_fired.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(fast_fired.load(), 1);
  EXPECT_EQ(slow_fired.load(), 0);
  dog.unwatch(slow);
  EXPECT_EQ(dog.expirations(), 1u);
}

TEST(Watchdog, CancelsAStalledStopTokenAttempt) {
  // The service-layer composition in miniature: a watchdog trips a
  // per-attempt child token with kStalled while the parent stays live.
  util::Watchdog dog;
  util::StopSource request;
  util::StopSource attempt(request.token());
  (void)dog.watch(std::chrono::milliseconds(5), [attempt] {
    attempt.request_stop(util::StopReason::kStalled);
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!attempt.token().stop_requested() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(attempt.token().stop_requested());
  EXPECT_EQ(attempt.token().reason(), util::StopReason::kStalled);
  EXPECT_FALSE(request.token().stop_requested());
}

// --- thread pool exception safety -----------------------------------------

TEST(ThreadPool, ThrowingTaskDoesNotWedgeWaitIdle) {
  util::ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&ran, i] {
      if (i == 3) throw std::runtime_error("task crashed");
      ++ran;
    });
  }
  pool.wait_idle();  // must not deadlock on the thrown task
  EXPECT_EQ(ran.load(), 7);
  const std::exception_ptr error = pool.take_unhandled_error();
  ASSERT_NE(error, nullptr);
  EXPECT_THROW(std::rethrow_exception(error), std::runtime_error);
  // The error was consumed.
  EXPECT_EQ(pool.take_unhandled_error(), nullptr);
}

TEST(ThreadPool, ShutdownWithThrowingTasksMidQueueIsClean) {
  // Destroying the pool with a queue of tasks, some of which throw,
  // must neither std::terminate (exception escaping a worker) nor
  // deadlock the destructor (skipped active_ decrement).
  std::atomic<int> ran{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&ran, i] {
        if (i % 5 == 0) throw std::runtime_error("mid-queue crash");
        ++ran;
      });
    }
    // No wait_idle(): the destructor drains the queue itself.
  }
  EXPECT_EQ(ran.load(), 25);
}

TEST(ThreadPool, FailPointInjectedTaskCrashIsCaptured) {
  util::FailPointScope scope;
  util::FailPoint::arm("thread_pool.task", {.skip = 1, .fires = 1});
  util::ThreadPool pool(1);
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    pool.submit([&ran] { ++ran; });
  }
  pool.wait_idle();
  // Exactly the second task was replaced by the injected crash.
  EXPECT_EQ(ran.load(), 3);
  EXPECT_NE(pool.take_unhandled_error(), nullptr);
}

// The next three tests pin the invariants that live in atomics (or in
// exchange-under-lock protocols) the thread-safety annotations cannot
// express — the "patterns the analysis can't see" audit (DESIGN.md
// §12): each has a `//` invariant comment at the declaration site and
// a regression test here.

TEST(StopToken, ConcurrentObserversAgreeOnOneReason) {
  // StopState.reason is a CAS latch: when a deadline expiry and an
  // explicit cancel race, exactly one cause wins and every observer —
  // on any thread, at any later time — reports that same cause.
  for (int round = 0; round < 20; ++round) {
    util::StopSource source;
    // A deadline already in the past: the first poll will try to latch
    // kDeadline while the cancel thread tries to latch kCancelled.
    source.set_deadline_after(std::chrono::nanoseconds(1));
    std::atomic<int> observed_cancelled{0};
    std::atomic<int> observed_deadline{0};
    {
      util::ThreadPool pool(4);
      pool.submit([&] { source.request_stop(); });
      for (int i = 0; i < 3; ++i) {
        pool.submit([&] {
          const util::StopToken token = source.token();
          while (!token.stop_requested()) {
          }
          if (token.reason() == util::StopReason::kCancelled) {
            ++observed_cancelled;
          } else if (token.reason() == util::StopReason::kDeadline) {
            ++observed_deadline;
          }
        });
      }
      pool.wait_idle();
    }
    // Every observer saw *some* latched reason, and they all agree.
    EXPECT_EQ(observed_cancelled.load() + observed_deadline.load(), 3);
    EXPECT_TRUE(observed_cancelled.load() == 0 ||
                observed_deadline.load() == 0)
        << "observers disagreed on the stop cause";
    // The source itself reports the same winner afterwards.
    const util::StopReason final_reason = source.token().reason();
    EXPECT_EQ(final_reason == util::StopReason::kCancelled,
              observed_cancelled.load() == 3);
  }
}

TEST(ThreadPool, ConcurrentTakeUnhandledErrorHandsOutExactlyOnce) {
  // take_unhandled_error() is exchange-under-lock: with several
  // threads racing to collect after a crash, exactly one receives the
  // exception and the rest see nullptr — the error is neither
  // duplicated nor dropped.
  util::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("lone crash"); });
  pool.wait_idle();
  std::atomic<int> got_error{0};
  {
    util::ThreadPool takers(4);
    for (int i = 0; i < 4; ++i) {
      takers.submit([&] {
        if (pool.take_unhandled_error() != nullptr) ++got_error;
      });
    }
    takers.wait_idle();
  }
  EXPECT_EQ(got_error.load(), 1);
}

TEST(ErrorCollector, FirstErrorWinsUnderConcurrentGuards) {
  // ErrorCollector::guard is noexcept and captures the *first*
  // exception in completion order; later failures are dropped, never
  // torn.  rethrow_if_any takes the lock, so a collector polled while
  // guards still run is safe (it just may not see stragglers).
  util::ErrorCollector errors;
  {
    util::ThreadPool pool(4);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&errors, i] {
        errors.guard([i] {
          throw std::runtime_error("crash " + std::to_string(i));
        });
      });
    }
    pool.wait_idle();
  }
  EXPECT_THROW(errors.rethrow_if_any(), std::runtime_error);
  // Idempotent: the captured error is kept, not consumed.
  EXPECT_THROW(errors.rethrow_if_any(), std::runtime_error);
}

TEST(ThreadPool, ParallelForChunksStillRethrowsGuardedErrors) {
  util::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for_chunks(
          100,
          [](unsigned, std::size_t begin, std::size_t) {
            if (begin == 0) throw std::invalid_argument("chunk failed");
          }),
      std::invalid_argument);
  // The pool survives for subsequent work.
  std::atomic<int> ran{0};
  pool.parallel_for_chunks(8, [&ran](unsigned, std::size_t begin,
                                     std::size_t end) {
    ran += static_cast<int>(end - begin);
  });
  EXPECT_EQ(ran.load(), 8);
}

// --- for_each_chunk / work-stealing batch scheduler ------------------------

// The contiguous splitter is the partition every campaign merge trusts:
// dense ascending chunks, sizes differing by at most one.
TEST(ForEachChunk, DenseAscendingChunksWithBalancedSizes) {
  for (const std::size_t total : {1u, 2u, 7u, 64u, 1000u}) {
    for (const std::size_t parts : {1u, 2u, 3u, 5u, 8u, 64u, 2000u}) {
      std::size_t expect_begin = 0;
      unsigned chunks = 0;
      std::size_t min_size = total;
      std::size_t max_size = 0;
      util::for_each_chunk(total, parts,
                           [&](unsigned i, std::size_t begin, std::size_t end) {
                             EXPECT_EQ(i, chunks);
                             EXPECT_EQ(begin, expect_begin);
                             EXPECT_LT(begin, end);
                             min_size = std::min(min_size, end - begin);
                             max_size = std::max(max_size, end - begin);
                             expect_begin = end;
                             ++chunks;
                           });
      EXPECT_EQ(expect_begin, total) << total << "/" << parts;
      EXPECT_EQ(chunks, std::min(std::max<std::size_t>(parts, 1), total));
      EXPECT_LE(max_size - min_size, 1u) << total << "/" << parts;
    }
  }
}

TEST(ForEachChunk, ZeroTotalCallsNothing) {
  bool called = false;
  util::for_each_chunk(0, 8, [&](unsigned, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
  util::for_each_chunk(0, 0, [&](unsigned, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

// Every batch index must be claimed exactly once and cover exactly
// [b * batch_size, min((b+1) * batch_size, total)) — the whole
// determinism contract of the stealing scheduler rests on this.
TEST(ThreadPool, ParallelForBatchesRunsEveryBatchExactlyOnce) {
  for (const unsigned workers : {1u, 2u, 3u, 4u, 8u}) {
    util::ThreadPool pool(workers);
    for (const std::size_t total : {1u, 5u, 64u, 257u, 1000u}) {
      for (const std::size_t batch_size : {1u, 3u, 64u, 256u}) {
        const std::size_t nbatches = (total + batch_size - 1) / batch_size;
        std::vector<std::atomic<int>> runs(nbatches);
        std::vector<std::atomic<int>> covered(total);
        const util::StealCounters counters = pool.parallel_for_batches(
            total, batch_size,
            [&](std::size_t b, std::size_t begin, std::size_t end) {
              ASSERT_LT(b, nbatches);
              EXPECT_EQ(begin, b * batch_size);
              EXPECT_EQ(end, std::min(begin + batch_size, total));
              runs[b].fetch_add(1);
              for (std::size_t i = begin; i < end; ++i) covered[i].fetch_add(1);
            });
        for (std::size_t b = 0; b < nbatches; ++b) {
          EXPECT_EQ(runs[b].load(), 1)
              << "workers=" << workers << " total=" << total
              << " batch_size=" << batch_size << " batch=" << b;
        }
        for (std::size_t i = 0; i < total; ++i) {
          EXPECT_EQ(covered[i].load(), 1);
        }
        EXPECT_EQ(counters.batches, nbatches);
        EXPECT_LE(counters.steals, counters.batches);
      }
    }
  }
}

// Edge geometry: empty universe, fewer items than workers, one batch
// bigger than the whole shard, and the batch_size = 0 clamp.
TEST(ThreadPool, ParallelForBatchesEdgeCases) {
  util::ThreadPool pool(8);

  // total == 0: nothing runs, zero telemetry.
  bool called = false;
  const util::StealCounters empty = pool.parallel_for_batches(
      0, 16, [&](std::size_t, std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
  EXPECT_EQ(empty.batches, 0u);
  EXPECT_EQ(empty.steals, 0u);

  // total < workers: three one-item batches, each exactly once.
  std::vector<std::atomic<int>> covered(3);
  const util::StealCounters tiny = pool.parallel_for_batches(
      3, 1, [&](std::size_t b, std::size_t begin, std::size_t end) {
        EXPECT_EQ(begin, b);
        EXPECT_EQ(end, b + 1);
        covered[b].fetch_add(1);
      });
  for (auto& c : covered) EXPECT_EQ(c.load(), 1);
  EXPECT_EQ(tiny.batches, 3u);

  // batch_size > total: a single batch spanning the whole range.
  std::atomic<int> whole_runs{0};
  const util::StealCounters whole = pool.parallel_for_batches(
      10, 1000, [&](std::size_t b, std::size_t begin, std::size_t end) {
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 10u);
        whole_runs.fetch_add(1);
      });
  EXPECT_EQ(whole_runs.load(), 1);
  EXPECT_EQ(whole.batches, 1u);
  EXPECT_EQ(whole.steals, 0u);

  // batch_size == 0 clamps to 1 (one batch per item).
  std::atomic<int> clamped_batches{0};
  const util::StealCounters clamped = pool.parallel_for_batches(
      5, 0, [&](std::size_t, std::size_t begin, std::size_t end) {
        EXPECT_EQ(end, begin + 1);
        clamped_batches.fetch_add(1);
      });
  EXPECT_EQ(clamped_batches.load(), 5);
  EXPECT_EQ(clamped.batches, 5u);
}

// Property test for the ISSUE's merge-determinism claim: per-batch
// partials folded in batch-index order are bit-identical to the serial
// contiguous split, across random totals, batch sizes, worker counts
// and seeds — even with per-item costs skewed enough to force steals.
// The fold is deliberately order-sensitive (multiply-xor chain), so any
// double-run, dropped index or out-of-order merge changes the digest.
TEST(ThreadPool, StolenBatchMergeIsBitIdenticalToContiguousSplit) {
  auto fold = [](std::uint64_t h, std::uint64_t v) {
    return (h ^ v) * 0x9E3779B97F4A7C15ULL;
  };
  Xoshiro256 geometry_rng(0xC0FFEE);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t total = 1 + geometry_rng.below(900);
    const std::size_t batch_size = 1 + geometry_rng.below(97);
    const std::uint64_t seed = geometry_rng();
    std::vector<std::uint64_t> items(total);
    Xoshiro256 item_rng(seed);
    for (auto& v : items) v = item_rng();

    // Serial reference: one pass, one fold.
    const std::size_t nbatches = (total + batch_size - 1) / batch_size;
    std::vector<std::uint64_t> ref_partial(nbatches, 0);
    for (std::size_t b = 0; b < nbatches; ++b) {
      const std::size_t begin = b * batch_size;
      const std::size_t end = std::min(begin + batch_size, total);
      for (std::size_t i = begin; i < end; ++i) {
        ref_partial[b] = fold(ref_partial[b], items[i]);
      }
    }
    std::uint64_t reference = 0;
    for (std::uint64_t p : ref_partial) reference = fold(reference, p);

    for (const unsigned workers : {1u, 2u, 4u, 7u}) {
      util::ThreadPool pool(workers);
      std::vector<std::uint64_t> partial(nbatches, 0);
      pool.parallel_for_batches(
          total, batch_size,
          [&](std::size_t b, std::size_t begin, std::size_t end) {
            // Skew per-batch cost so fast workers finish their home
            // range early and go stealing.
            if (b % 3 == 0) {
              std::this_thread::sleep_for(std::chrono::microseconds(200));
            }
            for (std::size_t i = begin; i < end; ++i) {
              partial[b] = fold(partial[b], items[i]);
            }
          });
      std::uint64_t merged = 0;
      for (std::uint64_t p : partial) merged = fold(merged, p);
      EXPECT_EQ(merged, reference)
          << "trial=" << trial << " workers=" << workers << " total=" << total
          << " batch_size=" << batch_size;
    }
  }
}

// A throwing batch surfaces on the caller like parallel_for_chunks,
// and the pool stays usable afterwards.
TEST(ThreadPool, ParallelForBatchesRethrowsFirstBatchError) {
  util::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for_batches(
                   100, 8,
                   [](std::size_t b, std::size_t, std::size_t) {
                     if (b == 2) throw std::runtime_error("batch failed");
                   }),
               std::runtime_error);
  std::atomic<int> ran{0};
  pool.parallel_for_batches(16, 4,
                            [&ran](std::size_t, std::size_t begin,
                                   std::size_t end) {
                              ran += static_cast<int>(end - begin);
                            });
  EXPECT_EQ(ran.load(), 16);
}

}  // namespace
}  // namespace prt
