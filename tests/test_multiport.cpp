// Tests for the multi-port pi-testing schemes (core/prt_multiport) —
// paper §4 and Fig. 2.
#include "core/prt_multiport.hpp"

#include <gtest/gtest.h>

#include "mem/fault_injector.hpp"
#include "mem/sram.hpp"

namespace prt::core {
namespace {

PiTester wom_tester() {
  return PiTester(gf::GF2m(0b10011), {1, 2, 2});
}

PiTester bom_tester() { return PiTester(gf::GF2m(0b11), {1, 1, 1}); }

PiConfig seed01() {
  PiConfig cfg;
  cfg.init = {0, 1};
  return cfg;
}

TEST(DualPort, PassesOnFaultFreeMemory) {
  mem::SimRam ram(100, 4, 2);
  const MultiPortResult r = run_pi_dualport(ram, wom_tester(), seed01());
  EXPECT_TRUE(r.pass);
}

TEST(DualPort, CyclesAre2nPlusConstant) {
  // Fig. 2: "the time complexity of a pi-test iteration ... is equal
  // 2n": 1 init cycle + (n-2) sub-iterations x 2 cycles + 1 Fin cycle
  // + 1 Init re-read cycle.
  const mem::Addr n = 128;
  mem::SimRam ram(n, 4, 2);
  const MultiPortResult r = run_pi_dualport(ram, wom_tester(), seed01());
  EXPECT_EQ(r.cycles, 2u * (n - 2) + 3);
  EXPECT_LE(r.cycles, 2u * n);
}

TEST(DualPort, SameFinAsSinglePort) {
  const PiTester t = wom_tester();
  mem::SimRam ram1(77, 4, 1);
  mem::SimRam ram2(77, 4, 2);
  const PiResult single = t.run(ram1, seed01());
  const MultiPortResult dual = run_pi_dualport(ram2, t, seed01());
  EXPECT_EQ(dual.fin, single.fin);
  EXPECT_EQ(dual.fin_expected, single.fin_expected);
  EXPECT_EQ(ram1.image(), ram2.image());
}

TEST(DualPort, SpreadsReadsAcrossPorts) {
  mem::SimRam ram(64, 4, 2);
  (void)run_pi_dualport(ram, wom_tester(), seed01());
  EXPECT_GT(ram.stats(0).reads, 0u);
  EXPECT_GT(ram.stats(1).reads, 0u);
}

TEST(DualPort, DetectsSaf) {
  // Cells whose Fig. 1b sequence value has bit0 = 1 (s_1 = 1, s_5 = F,
  // s_9 = 1), so a stuck-at-0 on bit 0 activates.
  for (mem::Addr cell : {1u, 5u, 9u}) {
    mem::FaultyRam ram(64, 4, 2);
    ram.inject(mem::Fault::saf({cell, 0}, 0));
    const MultiPortResult r = run_pi_dualport(ram, wom_tester(), seed01());
    EXPECT_FALSE(r.pass) << "cell " << cell;
  }
}

TEST(DualPort, RingClosure) {
  mem::SimRam ram(257, 4, 2);
  const MultiPortResult r = run_pi_dualport(ram, wom_tester(), seed01());
  EXPECT_TRUE(r.pass);
  EXPECT_EQ(r.fin, (std::vector<gf::Elem>{0, 1}));
}

TEST(DualPort, CyclesBeatSinglePort) {
  const mem::Addr n = 256;
  mem::SimRam ram1(n, 1, 1);
  mem::SimRam ram2(n, 1, 2);
  const PiTester t = bom_tester();
  const PiResult single = t.run(ram1, seed01());
  const MultiPortResult dual = run_pi_dualport(ram2, t, seed01());
  // Single-port cycles = ops ~ 3n; dual ~ 2n.
  EXPECT_LT(dual.cycles, single.cycles());
  EXPECT_NEAR(static_cast<double>(single.cycles()) /
                  static_cast<double>(dual.cycles),
              1.5, 0.05);
}

TEST(QuadPort, PassesAndUsesNCycles) {
  const mem::Addr n = 128;
  mem::SimRam ram(n, 4, 4);
  const MultiPortResult r = run_pi_quadport(ram, wom_tester(), seed01());
  EXPECT_TRUE(r.pass);
  EXPECT_EQ(r.cycles, (n - 2) + 3);
  EXPECT_LE(r.cycles, n + 1);
}

TEST(QuadPort, SameImageAsSinglePort) {
  const PiTester t = wom_tester();
  mem::SimRam ram1(50, 4, 1);
  mem::SimRam ram2(50, 4, 4);
  t.run(ram1, seed01());
  (void)run_pi_quadport(ram2, t, seed01());
  EXPECT_EQ(ram1.image(), ram2.image());
}

TEST(QuadPort, DetectsRdf) {
  mem::FaultyRam ram(64, 4, 4);
  ram.inject(mem::Fault::rdf({20, 1}));
  EXPECT_FALSE(run_pi_quadport(ram, wom_tester(), seed01()).pass);
}

TEST(MultiLfsr, PassesOnFaultFreeMemory) {
  mem::SimRam ram(120, 4, 4);
  const MultiPortResult r = run_pi_multilfsr(ram, wom_tester(), seed01());
  EXPECT_TRUE(r.pass);
  EXPECT_EQ(r.fin.size(), 4u);  // two 2-element Fin states
}

TEST(MultiLfsr, HalvesRunConcurrently) {
  // ~n cycles: both halves advance in the same read/write cycle pair.
  const mem::Addr n = 200;
  mem::SimRam ram(n, 4, 4);
  const MultiPortResult r = run_pi_multilfsr(ram, wom_tester(), seed01());
  EXPECT_LE(r.cycles, n + 8);
  EXPECT_GT(r.cycles, n / 2);
}

TEST(MultiLfsr, DetectsFaultInEitherHalf) {
  // Position 3 of either half's sequence holds s_3 = 6 (bit2 = 1), so
  // a stuck-at-0 on bit 2 activates: cell 3 (half 0) and cell
  // 60 + 3 = 63 (half 1).
  for (mem::Addr cell : {3u, 63u}) {
    mem::FaultyRam ram(120, 4, 4);
    ram.inject(mem::Fault::saf({cell, 2}, 0));
    EXPECT_FALSE(run_pi_multilfsr(ram, wom_tester(), seed01()).pass)
        << "cell " << cell;
  }
}

TEST(MultiLfsr, OddSizeSplitsCleanly) {
  mem::SimRam ram(101, 4, 4);
  const MultiPortResult r = run_pi_multilfsr(ram, wom_tester(), seed01());
  EXPECT_TRUE(r.pass);
}

TEST(MultiLfsr, RandomTrajectoriesDecorrelated) {
  PiConfig cfg = seed01();
  cfg.trajectory = TrajectoryKind::kRandom;
  cfg.seed = 3;
  mem::SimRam ram(96, 4, 4);
  const MultiPortResult r = run_pi_multilfsr(ram, wom_tester(), cfg);
  EXPECT_TRUE(r.pass);
}

TEST(OpCounts, AllSchemesIssueSameWorkPerCell) {
  // Reads/writes (not cycles) are scheme-invariant: 2n reads and
  // n writes for the single-LFSR schemes.
  const mem::Addr n = 64;
  mem::SimRam r1(n, 4, 2);
  mem::SimRam r2(n, 4, 4);
  const auto dual = run_pi_dualport(r1, wom_tester(), seed01());
  const auto quad = run_pi_quadport(r2, wom_tester(), seed01());
  EXPECT_EQ(dual.reads, quad.reads);
  EXPECT_EQ(dual.writes, quad.writes);
  EXPECT_EQ(dual.writes, static_cast<std::uint64_t>(n));
}

}  // namespace
}  // namespace prt::core
