#!/usr/bin/env python3
"""Compare a fresh BENCH_campaign.json against a committed baseline.

Timings are machine-dependent, but every other field of the report is
deterministic: the universes, the per-config coverage percentages and
the op counts (including the shrunk early-abort counts) must reproduce
exactly run over run.  The bench binary itself aborts on intra-run
parity violations; this checker catches *cross-commit* regressions —
a scheme change that silently drops coverage, or an accounting change
that breaks the packed/scalar op identity — by diffing the fresh
report against the baseline generated with the same flags
(`bench_campaign --quick`, threads pinned via PRT_THREADS).

Usage: check_bench_baseline.py FRESH.json BASELINE.json
Exit status 0 when everything matches, 1 with a diff report otherwise.
"""

import json
import sys


def section_key(section):
    return (section["universe"], section["scheme"], section["n"])


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        fresh = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    errors = []
    fresh_sections = {section_key(s): s for s in fresh["sections"]}
    baseline_sections = {section_key(s): s for s in baseline["sections"]}
    # Both directions: a section/config present on only one side means
    # either a regression (dropped from the fresh run) or a bench
    # change whose baseline was not regenerated — both must fail so
    # nothing ships unchecked.
    for key in fresh_sections.keys() - baseline_sections.keys():
        errors.append(
            f"section {key} not in baseline (regenerate the baseline)"
        )
    for key, base in baseline_sections.items():
        got = fresh_sections.get(key)
        if got is None:
            errors.append(f"section {key} missing from fresh report")
            continue
        if got["faults"] != base["faults"]:
            errors.append(
                f"section {key}: faults {got['faults']} != "
                f"baseline {base['faults']}"
            )
            continue
        # Suite sections: the wall-clock ratio itself is machine
        # dependent, but the field must survive (the bench computed a
        # real suite run) and stay positive; a 0 would mean the suite
        # config silently dropped out of the comparison.
        if base.get("suite_vs_sequential", 0) > 0:
            if got.get("suite_vs_sequential", 0) <= 0:
                errors.append(
                    f"section {key}: suite_vs_sequential missing or 0 "
                    "(suite config dropped out of the sweep?)"
                )
        base_configs = {c["name"]: c for c in base["configs"]}
        got_configs = {c["name"]: c for c in got["configs"]}
        for name in got_configs.keys() - base_configs.keys():
            errors.append(
                f"section {key}: config '{name}' not in baseline "
                "(regenerate the baseline)"
            )
        for name, bc in base_configs.items():
            gc = got_configs.get(name)
            if gc is None:
                errors.append(f"section {key}: config '{name}' missing")
                continue
            for field in ("ops", "coverage"):
                if gc[field] != bc[field]:
                    errors.append(
                        f"section {key} config '{name}': {field} "
                        f"{gc[field]} != baseline {bc[field]}"
                    )

    if errors:
        print("bench baseline check FAILED:", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(
        f"bench baseline check OK: {len(baseline['sections'])} sections, "
        "ops and coverage match"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
