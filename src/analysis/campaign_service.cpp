#include "analysis/campaign_service.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <functional>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/campaign_driver.hpp"
#include "march/march_test.hpp"
#include "util/annotations.hpp"
#include "util/durable_write.hpp"
#include "util/fail_point.hpp"
#include "util/stop_token.hpp"
#include "util/thread_pool.hpp"

namespace prt::analysis {

namespace {

// --- fingerprint ----------------------------------------------------
// FNV-1a over everything that determines a campaign's result: workload
// structure (scheme/test fingerprint), geometry, run options and the
// full universe.  A checkpoint is only ever merged into a request with
// the same fingerprint — resuming against a renamed-but-identical
// workload works, resuming against different faults cannot.

struct Fnv1a {
  std::uint64_t h = 1469598103934665603ULL;
  void byte(unsigned char b) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>(v >> (8 * i)));
  }
  void mix(const std::string& s) {
    mix(s.size());
    for (const char c : s) byte(static_cast<unsigned char>(c));
  }
};

std::string request_fingerprint(const CampaignRequest& req) {
  Fnv1a f;
  if (req.scheme) {
    f.mix(std::string("prt"));
    f.mix(core::scheme_fingerprint(*req.scheme));
  } else {
    f.mix(std::string("march"));
    f.mix(march::test_fingerprint(*req.march_test));
  }
  f.mix(req.options.n);
  f.mix(req.options.m);
  f.mix(req.options.ports);
  f.mix(req.packed ? 1 : 0);
  f.mix(req.early_abort ? 1 : 0);
  f.mix(req.universe.size());
  for (const mem::Fault& fault : req.universe) {
    f.mix(static_cast<std::uint64_t>(fault.kind));
    f.mix(fault.victim.cell);
    f.mix(fault.victim.bit);
    f.mix(fault.aggressor.cell);
    f.mix(fault.aggressor.bit);
    f.mix(fault.state);
    f.mix(fault.alias);
    f.mix(fault.pattern);
    f.mix(fault.grid_cols);
    f.mix(fault.delay);
  }
  std::ostringstream hex;
  hex << std::hex << f.h;
  return hex.str();
}

// --- checkpoint file ------------------------------------------------
// Plain text, one shard per line, integers only — parse(serialize(x))
// is exact, which the resumed-equals-uninterrupted bit-identity
// guarantee rests on.  Replaced atomically (tmp file + rename) so a
// crash mid-write leaves the previous checkpoint intact.

constexpr char kCheckpointHeader[] = "prt-campaign-checkpoint v1";

struct CheckpointShard {
  std::size_t index = 0;
  CampaignResult result;
};

struct Checkpoint {
  std::string fingerprint;
  std::size_t shards_total = 0;
  std::vector<CheckpointShard> shards;
};

std::string serialize_checkpoint(const Checkpoint& cp) {
  std::ostringstream out;
  out << kCheckpointHeader << "\n";
  out << "fingerprint " << cp.fingerprint << "\n";
  out << "shards " << cp.shards_total << "\n";
  for (const CheckpointShard& s : cp.shards) {
    out << "shard " << s.index << " ops " << s.result.ops << " overall "
        << s.result.overall.detected << " " << s.result.overall.total
        << " classes " << s.result.by_class.size();
    for (const auto& [cls, cov] : s.result.by_class) {
      out << " " << static_cast<unsigned>(cls) << " " << cov.detected << " "
          << cov.total;
    }
    out << " escapes " << s.result.escapes.size();
    for (const std::size_t e : s.result.escapes) out << " " << e;
    out << "\n";
  }
  return out.str();
}

void expect_word(std::istream& in, const char* expected,
                 const std::string& path) {
  std::string word;
  if (!(in >> word) || word != expected) {
    throw std::runtime_error("malformed checkpoint (expected '" +
                             std::string(expected) + "'): " + path);
  }
}

/// Loads and parses a checkpoint.  Missing file = std::nullopt (fresh
/// run); anything malformed throws (the request fails rather than
/// guessing at partial progress).
std::optional<Checkpoint> load_checkpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string header;
  if (!std::getline(in, header) || header != kCheckpointHeader) {
    throw std::runtime_error("malformed checkpoint (bad header): " + path);
  }
  Checkpoint cp;
  expect_word(in, "fingerprint", path);
  if (!(in >> cp.fingerprint)) {
    throw std::runtime_error("malformed checkpoint (fingerprint): " + path);
  }
  expect_word(in, "shards", path);
  if (!(in >> cp.shards_total)) {
    throw std::runtime_error("malformed checkpoint (shard count): " + path);
  }
  std::string word;
  while (in >> word) {
    if (word != "shard") {
      throw std::runtime_error("malformed checkpoint (expected 'shard'): " +
                               path);
    }
    CheckpointShard s;
    in >> s.index;
    expect_word(in, "ops", path);
    in >> s.result.ops;
    expect_word(in, "overall", path);
    in >> s.result.overall.detected >> s.result.overall.total;
    expect_word(in, "classes", path);
    std::size_t classes = 0;
    in >> classes;
    if (!in || classes > 64) {
      throw std::runtime_error("malformed checkpoint (class count): " + path);
    }
    for (std::size_t c = 0; c < classes; ++c) {
      unsigned cls = 0;
      ClassCoverage cov;
      in >> cls >> cov.detected >> cov.total;
      s.result.by_class[static_cast<mem::FaultClass>(cls)] = cov;
    }
    expect_word(in, "escapes", path);
    std::size_t escapes = 0;
    in >> escapes;
    for (std::size_t e = 0; e < escapes && in; ++e) {
      std::size_t idx = 0;
      in >> idx;
      s.result.escapes.push_back(idx);
    }
    if (!in) {
      throw std::runtime_error("malformed checkpoint (truncated shard): " +
                               path);
    }
    cp.shards.push_back(std::move(s));
  }
  return cp;
}

/// Durable atomic replace: write `path + ".tmp"`, fsync it, rename it
/// over `path`, fsync the directory (util::durable_replace_file) — a
/// crash at any point leaves either the previous checkpoint or the new
/// one, fully persisted, never a torn or lost file.  The
/// "campaign_service.checkpoint" fail point sits in front so tests can
/// fail writes without touching the filesystem.
void write_checkpoint_file(const std::string& path, const std::string& text) {
  util::FailPoint::hit("campaign_service.checkpoint");
  util::durable_replace_file(path, text);
}

}  // namespace

std::string to_string(RequestStatus status) {
  switch (status) {
    case RequestStatus::kComplete:
      return "complete";
    case RequestStatus::kPartialCancelled:
      return "partial (cancelled)";
    case RequestStatus::kPartialDeadline:
      return "partial (deadline)";
    case RequestStatus::kFailed:
      return "failed";
    case RequestStatus::kRejected:
      return "rejected";
  }
  return "unknown";
}

// --- request state --------------------------------------------------

namespace detail {

/// Shared state of one request, owned jointly by the caller's Ticket
/// and every pool task working the request.  `mu` guards all mutable
/// fields.
struct ServiceRequest {
  // Invariant (publication, invisible to thread-safety analysis): the
  // setup fields — req, run_shard, fingerprint, ranges — are written
  // under `mu` by orchestrate() before it submits any shard task and
  // never again; shard tasks read them without the lock, synchronized
  // by the pool's queue mutex (submit() happens-after the writes,
  // task execution happens-after submit()).  Guarding the reads would
  // put the type-erased run_shard call itself under `mu`, serializing
  // every shard.  `stop` is its own synchronization (atomics).
  CampaignRequest req;
  util::StopSource stop;
  std::function<bool(std::span<const mem::Fault>, std::size_t, std::size_t,
                     CampaignResult&, const util::StopToken&)>
      run_shard;
  std::string fingerprint;
  /// The shard partition: contiguous ascending [begin, end) ranges.
  /// Fixed at orchestration (or adopted from the checkpoint) — the
  /// merge over it is what makes resume bit-identical.
  std::vector<std::pair<std::size_t, std::size_t>> ranges;

  util::Mutex mu;
  util::CondVar cv;
  bool finished PRT_GUARDED_BY(mu) = false;
  RequestOutcome outcome PRT_GUARDED_BY(mu);
  std::vector<CampaignResult> results PRT_GUARDED_BY(mu);
  std::vector<unsigned char> done PRT_GUARDED_BY(mu);
  std::vector<int> attempts PRT_GUARDED_BY(mu);
  std::size_t outstanding PRT_GUARDED_BY(mu) = 0;
  std::size_t done_count PRT_GUARDED_BY(mu) = 0;
  std::size_t resumed_count PRT_GUARDED_BY(mu) = 0;
  std::size_t since_checkpoint PRT_GUARDED_BY(mu) = 0;
  bool failed PRT_GUARDED_BY(mu) = false;
  std::string error PRT_GUARDED_BY(mu);
};

}  // namespace detail

// --- ticket ---------------------------------------------------------

CampaignService::Ticket::Ticket(std::shared_ptr<detail::ServiceRequest> request)
    : request_(std::move(request)) {}

const RequestOutcome& CampaignService::Ticket::wait() const& {
  if (!request_) throw std::logic_error("wait() on a default Ticket");
  util::MutexLock lock(request_->mu);
  while (!request_->finished) request_->cv.wait(lock);
  // `outcome` is written once, before `finished` latches; handing the
  // reference out past the lock is safe because no writer runs again.
  return request_->outcome;
}

RequestOutcome CampaignService::Ticket::wait() && {
  // The outcome lives inside the request the ticket owns, so a
  // temporary ticket (`service.submit(...).wait()`) must hand the
  // outcome out by value — a reference would dangle the moment the
  // temporary is destroyed at the end of the full expression.
  return static_cast<const Ticket&>(*this).wait();
}

bool CampaignService::Ticket::done() const {
  if (!request_) return true;
  util::MutexLock lock(request_->mu);
  return request_->finished;
}

void CampaignService::Ticket::cancel() const {
  if (request_) request_->stop.request_stop();
}

// --- service --------------------------------------------------------

struct CampaignService::Impl {
  using Request = detail::ServiceRequest;

  ServiceOptions options;
  util::ThreadPool pool;

  util::Mutex mu;
  util::CondVar all_done;
  std::size_t inflight PRT_GUARDED_BY(mu) = 0;

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> partial{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> shard_retries{0};
  std::atomic<std::uint64_t> checkpoint_writes{0};
  std::atomic<std::uint64_t> checkpoint_failures{0};
  std::atomic<std::uint64_t> shards_resumed{0};

  explicit Impl(const ServiceOptions& o) : options(o), pool(o.threads) {}

  /// Serializes the current progress into the checkpoint file.
  /// Throws on write failure (callers count it and carry on — a
  /// failed checkpoint must never fail the campaign).
  void write_checkpoint_locked(Request& r) PRT_REQUIRES(r.mu) {
    Checkpoint cp;
    cp.fingerprint = r.fingerprint;
    cp.shards_total = r.ranges.size();
    for (std::size_t s = 0; s < r.ranges.size(); ++s) {
      if (r.done[s] != 0) cp.shards.push_back({s, r.results[s]});
    }
    write_checkpoint_file(r.req.checkpoint_path, serialize_checkpoint(cp));
  }

  /// Resolves the request: merges the completed shards (in shard
  /// order — ranges ascend, so the partial merge is exact), fixes the
  /// status, flushes or removes the checkpoint, wakes waiters.
  void finalize_locked(Request& r) PRT_REQUIRES(r.mu) {
    RequestOutcome& out = r.outcome;
    out.shards_total = r.ranges.size();
    out.shards_done = r.done_count;
    out.shards_resumed = r.resumed_count;
    if (r.failed) {
      out.status = RequestStatus::kFailed;
      out.error = r.error;
    } else if (r.done_count == r.ranges.size()) {
      out.status = RequestStatus::kComplete;
    } else {
      switch (r.stop.token().reason()) {
        case util::StopReason::kCancelled:
          out.status = RequestStatus::kPartialCancelled;
          break;
        case util::StopReason::kDeadline:
          out.status = RequestStatus::kPartialDeadline;
          break;
        case util::StopReason::kNone:
          out.status = RequestStatus::kFailed;
          out.error = "internal: shards incomplete without a stop cause";
          break;
      }
    }
    if (!r.req.checkpoint_path.empty()) {
      if (out.status == RequestStatus::kComplete) {
        std::remove(r.req.checkpoint_path.c_str());
      } else if (r.done_count > 0) {
        // Final flush so an interrupted request resumes from its last
        // completed shard, not its last cadence point.  Skipped when
        // nothing completed (e.g. a fingerprint mismatch) — never
        // clobber an existing checkpoint with an empty one.  Must run
        // before the merge below moves the per-shard results out.
        try {
          write_checkpoint_locked(r);
          ++checkpoint_writes;
        } catch (...) {
          ++checkpoint_failures;
        }
      }
    }
    std::vector<CampaignResult> merged;
    merged.reserve(r.done_count);
    for (std::size_t s = 0; s < r.ranges.size(); ++s) {
      if (r.done[s] != 0) merged.push_back(std::move(r.results[s]));
    }
    out.result = merge_results(merged);
    switch (out.status) {
      case RequestStatus::kComplete:
        ++completed;
        break;
      case RequestStatus::kPartialCancelled:
      case RequestStatus::kPartialDeadline:
        ++partial;
        break;
      default:
        ++failed;
        break;
    }
    r.finished = true;
    r.cv.notify_all();
  }

  /// Drops one in-flight slot (after a request resolved).
  void release() PRT_EXCLUDES(mu) {
    util::MutexLock lock(mu);
    --inflight;
    all_done.notify_all();
  }

  /// One shard's pool task: runs the shard with the request's token,
  /// records the result, writes the cadence checkpoint, retries on an
  /// exception (bounded), finalizes when it was the last outstanding
  /// task.  The "campaign_service.shard" fail point models a worker
  /// crash.
  void run_shard_task(const std::shared_ptr<Request>& r, std::size_t s) {
    const auto [begin, end] = r->ranges[s];
    CampaignResult result;
    bool completed_shard = false;
    bool threw = false;
    std::string what;
    try {
      util::FailPoint::hit("campaign_service.shard");
      completed_shard =
          r->run_shard(r->req.universe, begin, end, result, r->stop.token());
    } catch (const std::exception& e) {
      threw = true;
      what = e.what();
    } catch (...) {
      threw = true;
      what = "unknown error";
    }

    bool resolved = false;
    {
      util::MutexLock lock(r->mu);
      if (threw) {
        ++r->attempts[s];
        const bool retry = !r->failed && !r->stop.stop_requested() &&
                           r->attempts[s] <= options.max_retries;
        if (retry) {
          ++shard_retries;
          lock.Unlock();
          // Resubmit instead of looping in place: the retried shard
          // goes to the back of the queue, so one flaky shard cannot
          // starve other requests' tasks.
          pool.submit([this, r, s] { run_shard_task(r, s); });
          return;  // outstanding unchanged — the retry owns the slot
        }
        if (!r->failed) {
          r->failed = true;
          r->error = "shard " + std::to_string(s) + " failed after " +
                     std::to_string(r->attempts[s]) + " attempt(s): " + what;
          // Wind down this request's remaining shards promptly; other
          // requests have their own tokens and are untouched.
          r->stop.request_stop();
        }
      } else if (completed_shard) {
        r->results[s] = std::move(result);
        r->done[s] = 1;
        ++r->done_count;
        ++r->since_checkpoint;
        if (!r->req.checkpoint_path.empty() &&
            r->done_count < r->ranges.size() &&
            r->since_checkpoint >= r->req.checkpoint_every) {
          r->since_checkpoint = 0;
          try {
            write_checkpoint_locked(*r);
            ++checkpoint_writes;
          } catch (...) {
            // Checkpointing is best-effort durability; the campaign
            // itself keeps running.
            ++checkpoint_failures;
          }
        }
      }
      // else: the shard observed the stop token and abandoned — its
      // partial tallies are discarded, the slot stays not-done.
      if (--r->outstanding == 0) {
        finalize_locked(*r);
        resolved = true;
      }
    }
    if (resolved) release();
  }

  /// The per-request setup task: builds the driver (oracle-cache
  /// builds happen here, not on the submitting thread), fingerprints
  /// the request, loads/validates the checkpoint, fixes the shard
  /// partition and fans the pending shards out.  Holds r->mu for the
  /// whole setup: no shard task exists yet, so the lock is
  /// uncontended except for tickets polling done(), and holding it
  /// lets the analysis prove every write to the guarded state.  Shard
  /// tasks submitted at the end block on r->mu at most until this
  /// scope exits.
  void orchestrate(const std::shared_ptr<Request>& r) {
    bool resolved = false;
    util::MutexLock lock(r->mu);
    try {
      CampaignRequest& req = r->req;
      if (req.scheme) {
        const EngineOptions engine{.threads = 1,
                                   .parallel = false,
                                   .use_oracle = true,
                                   .early_abort = req.early_abort,
                                   .packed = req.packed};
        std::shared_ptr<detail::PrtDriver> driver =
            detail::make_driver(*req.scheme, req.options, engine);
        r->run_shard = [driver = std::move(driver)](
                           std::span<const mem::Fault> universe,
                           std::size_t begin, std::size_t end,
                           CampaignResult& out, const util::StopToken& stop) {
          return driver->run_shard(universe, begin, end, out, stop);
        };
      } else {
        const MarchEngineOptions engine{.threads = 1,
                                        .parallel = false,
                                        .packed = req.packed,
                                        .early_abort = req.early_abort};
        std::shared_ptr<detail::MarchDriver> driver =
            detail::make_driver(*req.march_test, req.options, engine);
        r->run_shard = [driver = std::move(driver)](
                           std::span<const mem::Fault> universe,
                           std::size_t begin, std::size_t end,
                           CampaignResult& out, const util::StopToken& stop) {
          return driver->run_shard(universe, begin, end, out, stop);
        };
      }
      r->fingerprint = request_fingerprint(req);

      std::size_t shard_count =
          req.shards != 0 ? req.shards : pool.workers();
      std::optional<Checkpoint> cp;
      if (req.resume) {
        cp = load_checkpoint(req.checkpoint_path);
        if (cp) {
          if (cp->fingerprint != r->fingerprint) {
            throw std::runtime_error(
                "checkpoint fingerprint mismatch: " + req.checkpoint_path +
                " records a different campaign (workload, options or "
                "universe changed)");
          }
          if (cp->shards_total < 1 ||
              cp->shards_total > std::max<std::size_t>(req.universe.size(),
                                                       1)) {
            throw std::runtime_error("malformed checkpoint (shard count): " +
                                     req.checkpoint_path);
          }
          // Adopt the recorded partition — merging checkpointed shard
          // results is only bit-identical over the partition they were
          // produced under.
          shard_count = cp->shards_total;
        }
      }
      util::for_each_chunk(req.universe.size(), shard_count,
                           [&](unsigned, std::size_t begin, std::size_t end) {
                             r->ranges.emplace_back(begin, end);
                           });
      if (cp && cp->shards_total != r->ranges.size()) {
        throw std::runtime_error("malformed checkpoint (partition): " +
                                 req.checkpoint_path);
      }
      r->results.resize(r->ranges.size());
      r->done.assign(r->ranges.size(), 0);
      r->attempts.assign(r->ranges.size(), 0);
      if (cp) {
        for (CheckpointShard& s : cp->shards) {
          if (s.index >= r->ranges.size() || r->done[s.index] != 0) {
            throw std::runtime_error("malformed checkpoint (shard index): " +
                                     req.checkpoint_path);
          }
          r->results[s.index] = std::move(s.result);
          r->done[s.index] = 1;
        }
        r->done_count = r->resumed_count = cp->shards.size();
        shards_resumed += cp->shards.size();
      }

      std::vector<std::size_t> pending;
      for (std::size_t s = 0; s < r->ranges.size(); ++s) {
        if (r->done[s] == 0) pending.push_back(s);
      }
      if (pending.empty()) {
        finalize_locked(*r);
        resolved = true;
      } else {
        r->outstanding = pending.size();
        for (const std::size_t s : pending) {
          pool.submit([this, r, s] { run_shard_task(r, s); });
        }
      }
    } catch (const std::exception& e) {
      r->failed = true;
      r->error = e.what();
      finalize_locked(*r);
      resolved = true;
    }
    lock.Unlock();
    if (resolved) release();
  }
};

CampaignService::CampaignService(const ServiceOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}

CampaignService::~CampaignService() { wait_all(); }

CampaignService::Ticket CampaignService::submit(CampaignRequest request) {
  auto r = std::make_shared<detail::ServiceRequest>();
  r->req = std::move(request);
  if (r->req.checkpoint_every == 0) r->req.checkpoint_every = 1;

  // Fail-fast validation on the submitting thread: a malformed request
  // resolves immediately instead of occupying an in-flight slot.
  std::string invalid;
  if (static_cast<bool>(r->req.scheme) == static_cast<bool>(r->req.march_test)) {
    invalid = "exactly one of scheme / march_test must be set";
  } else if (r->req.resume && r->req.checkpoint_path.empty()) {
    invalid = "resume requires a checkpoint_path";
  } else {
    try {
      validate_campaign_options(r->req.options);
    } catch (const std::exception& e) {
      invalid = e.what();
    }
  }
  if (!invalid.empty()) {
    // Still private to this thread; locked for the analysis' sake.
    util::MutexLock lock(r->mu);
    r->finished = true;
    r->outcome.status = RequestStatus::kFailed;
    r->outcome.error = std::move(invalid);
    ++impl_->failed;
    return Ticket(std::move(r));
  }

  {
    util::MutexLock lock(impl_->mu);
    if (impl_->inflight >= impl_->options.max_inflight) {
      lock.Unlock();
      // The request is still private to this thread (never admitted),
      // so resolving it needs its lock only to satisfy the analysis.
      util::MutexLock request_lock(r->mu);
      r->finished = true;
      r->outcome.status = RequestStatus::kRejected;
      r->outcome.error = "in-flight bound reached (" +
                         std::to_string(impl_->options.max_inflight) + ")";
      ++impl_->rejected;
      return Ticket(std::move(r));
    }
    ++impl_->inflight;
  }
  ++impl_->accepted;
  // The deadline clock starts at admission: queueing time counts
  // against the request's budget.
  if (r->req.deadline.count() > 0) {
    r->stop.set_deadline_after(r->req.deadline);
  }
  impl_->pool.submit([impl = impl_.get(), r] { impl->orchestrate(r); });
  return Ticket(std::move(r));
}

void CampaignService::wait_all() {
  util::MutexLock lock(impl_->mu);
  while (impl_->inflight != 0) impl_->all_done.wait(lock);
}

CampaignService::Stats CampaignService::stats() const {
  Stats s;
  s.accepted = impl_->accepted.load();
  s.rejected = impl_->rejected.load();
  s.completed = impl_->completed.load();
  s.partial = impl_->partial.load();
  s.failed = impl_->failed.load();
  s.shard_retries = impl_->shard_retries.load();
  s.checkpoint_writes = impl_->checkpoint_writes.load();
  s.checkpoint_failures = impl_->checkpoint_failures.load();
  s.shards_resumed = impl_->shards_resumed.load();
  return s;
}

}  // namespace prt::analysis
