// Campaign-engine micro-benchmark: the seed's serial per-fault path
// (fresh FaultyRam + full scheme re-derivation per fault) against the
// oracle-backed engine, its parallel fan-out, and early-abort — the
// perf trajectory behind the CampaignEngine overhaul (DESIGN.md §7).
//
// Runs the extended BOM scheme over the classical fault universe at
// n in {256, 1024, 4096} and writes a machine-readable summary to
// BENCH_campaign.json next to the working directory's other artifacts.
// At n = 4096 every configuration runs on the same leading slice of
// the universe so the serial baseline stays tractable; ratios remain
// apples-to-apples.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "analysis/campaign_engine.hpp"
#include "core/prt_engine.hpp"
#include "mem/fault_injector.hpp"
#include "mem/fault_universe.hpp"

namespace {

using namespace prt;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The seed code path, reproduced verbatim as the baseline: one heap
/// FaultyRam per fault, prefilled cell by cell, and run_prt re-deriving
/// trajectory/golden sequence/Fin*/image per fault.
analysis::CampaignResult seed_serial_campaign(
    std::span<const mem::Fault> universe, const core::PrtScheme& scheme,
    const analysis::CampaignOptions& opt) {
  analysis::CampaignResult result;
  for (std::size_t i = 0; i < universe.size(); ++i) {
    mem::FaultyRam ram(opt.n, opt.m, opt.ports);
    for (mem::Addr a = 0; a < opt.n; ++a) ram.poke(a, 0);
    ram.inject(universe[i]);
    const bool detected = core::run_prt(ram, scheme).detected();
    result.ops += ram.total_stats().total();
    auto& cls = result.by_class[mem::fault_class(universe[i].kind)];
    ++cls.total;
    ++result.overall.total;
    if (detected) {
      ++cls.detected;
      ++result.overall.detected;
    } else {
      result.escapes.push_back(i);
    }
  }
  return result;
}

struct ConfigTiming {
  std::string name;
  double seconds = 0;
  std::uint64_t ops = 0;
  double coverage = 0;
};

struct SizeReport {
  mem::Addr n = 0;
  std::size_t faults = 0;
  std::vector<ConfigTiming> configs;
  [[nodiscard]] double speedup_vs_serial(std::size_t idx) const {
    return configs[idx].seconds > 0 ? configs[0].seconds / configs[idx].seconds
                                    : 0.0;
  }
};

SizeReport bench_size(mem::Addr n, std::size_t fault_cap) {
  auto universe = mem::classical_universe(n);
  if (universe.size() > fault_cap) universe.resize(fault_cap);
  const auto scheme = core::extended_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;

  SizeReport report;
  report.n = n;
  report.faults = universe.size();

  analysis::CampaignResult reference;
  auto record = [&](const std::string& name, auto&& run) {
    const auto start = Clock::now();
    const analysis::CampaignResult r = run();
    const double secs = seconds_since(start);
    if (report.configs.empty()) {
      reference = r;
    } else if (!(r.overall == reference.overall &&
                 r.escapes == reference.escapes)) {
      std::fprintf(stderr, "PARITY VIOLATION in config %s at n=%u\n",
                   name.c_str(), n);
      std::exit(1);
    }
    report.configs.push_back(
        {name, secs, r.ops, r.overall.percent()});
    std::printf("  %-24s %8.3f s   %12llu ops   %6.2f %% coverage\n",
                name.c_str(), secs,
                static_cast<unsigned long long>(r.ops), r.overall.percent());
  };

  std::printf("n = %u, %zu faults, scheme %s\n", n, universe.size(),
              scheme.name.c_str());
  record("serial (seed path)", [&] {
    return seed_serial_campaign(universe, scheme, opt);
  });
  record("oracle", [&] {
    analysis::EngineOptions eng;
    eng.parallel = false;
    return analysis::run_prt_campaign(universe, scheme, opt, eng);
  });
  record("oracle+parallel", [&] {
    return analysis::run_prt_campaign(universe, scheme, opt, {});
  });
  record("oracle+parallel+abort", [&] {
    analysis::EngineOptions eng;
    eng.early_abort = true;
    return analysis::run_prt_campaign(universe, scheme, opt, eng);
  });
  for (std::size_t i = 1; i < report.configs.size(); ++i) {
    std::printf("  %-24s %.2fx vs serial\n", report.configs[i].name.c_str(),
                report.speedup_vs_serial(i));
  }
  std::printf("\n");
  return report;
}

void write_json(const std::vector<SizeReport>& reports,
                unsigned hardware_threads) {
  std::ofstream out("BENCH_campaign.json");
  out << "{\n"
      << "  \"bench\": \"campaign\",\n"
      << "  \"scheme\": \"PRT-ext BOM\",\n"
      << "  \"universe\": \"classical\",\n"
      << "  \"hardware_concurrency\": " << hardware_threads << ",\n"
      << "  \"sizes\": [\n";
  for (std::size_t s = 0; s < reports.size(); ++s) {
    const SizeReport& r = reports[s];
    out << "    {\n      \"n\": " << r.n << ",\n      \"faults\": "
        << r.faults << ",\n      \"configs\": [\n";
    for (std::size_t c = 0; c < r.configs.size(); ++c) {
      const ConfigTiming& t = r.configs[c];
      out << "        {\"name\": \"" << t.name << "\", \"seconds\": "
          << t.seconds << ", \"ops\": " << t.ops << ", \"coverage\": "
          << t.coverage << ", \"speedup_vs_serial\": "
          << r.speedup_vs_serial(c) << "}"
          << (c + 1 < r.configs.size() ? "," : "") << "\n";
    }
    out << "      ]\n    }" << (s + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  // --quick caps every universe for smoke runs (CI, 1-core boxes).
  std::size_t cap_small = static_cast<std::size_t>(-1);
  std::size_t cap_large = 4096;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      cap_small = 512;
      cap_large = 512;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("campaign engine bench — %u hardware thread(s)\n\n", hw);
  std::vector<SizeReport> reports;
  reports.push_back(bench_size(256, cap_small));
  reports.push_back(bench_size(1024, cap_small));
  reports.push_back(bench_size(4096, cap_large));
  write_json(reports, hw);
  std::printf("wrote BENCH_campaign.json\n");
  return 0;
}
