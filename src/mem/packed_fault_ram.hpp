// Word-packed SIMD fault lanes.
//
// PackedFaultRamT<W> simulates up to LaneTraits<W>::kLanes
// *independent* single-fault faulty memories in one pass: each site
// stores a lane word whose bit lane L is the site's value in lane L's
// memory, and each lane carries exactly one injected fault.  One sweep
// over the array therefore evaluates up to kLanes faults
// simultaneously — the SIMD unit is the ordinary 64-bit ALU for the
// LaneWord instantiation and the vector units for the WideWord<K>
// ones (mem/lane_word.hpp), and every fault effect below is a handful
// of bitwise lane ops.
//
// A "site" is one bit of one cell: a memory of `cells` words of
// `width` bits is stored as cells*width lane words, site = cell*width
// + bit plane.  width == 1 (the classical bit-oriented campaigns) is
// the hot path and keeps the original one-site-per-cell layout; the
// word-oriented (WOM, m > 1) campaigns drive read_word()/write_word(),
// which count one operation per word access exactly like the scalar
// FaultyRam.
//
// Every fault family rides a lane now:
//  * the single-cell kinds (stuck-at, transition, write-disturb, the
//    read-logic kinds) — one victim site per lane;
//  * the two-cell coupling kinds (CFin, CFid, CFst) and bridges — a
//    lane is a whole memory, so an aggressor/victim *pair* fits in one
//    lane;
//  * the decoder faults — one fault per lane means the remap touches
//    exactly one address, a per-lane scatter on that one cell;
//  * static NPSF — each lane carries a 4-cell (N,E,S,W) neighbourhood
//    pattern in the same aggressor/victim metadata shape the coupling
//    lanes use: per-direction masks registered on the neighbour sites
//    plus cached neighbour-value lane words, so one write to any
//    neighbour re-checks the trigger of all lanes with four AND/XOR
//    ops (see apply_npsf);
//  * retention (DRF) — decay is advanced *analytically* from a packed
//    operation clock (reads + writes + advance_time ticks, bit-exact
//    with FaultyRam's clock_): instead of per-access decay scans the
//    lane latches the decayed value into the victim's lane word at the
//    first read after the pause boundary crosses the fault's delay.
//
// With that, the scalar FaultyRam is a *differential reference only*:
// semantics are bit-exact per lane with a FaultyRam holding the same
// single fault (tests/test_packed_campaign.cpp runs the differential
// check), including the injection-time stuck-at clamp, the
// injection-time enforcement of state conditions (CFst, bridge, NPSF)
// and the per-port sense-amp history of SOF (the PRT engines drive
// port 0 only).  Because every lane holds exactly one fault, the
// scalar model's cascade machinery (a victim flip re-triggering other
// faults) degenerates to a single direct effect per lane.
//
// Results are bit-identical per lane across every instantiation: the
// campaign layer picks the width per batch (wide only when the batch
// can fill at least half the lanes) without changing any verdict, op
// count or escape list (analysis/campaign_driver.hpp).
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "mem/fault.hpp"
#include "mem/lane_word.hpp"

namespace prt::mem {

/// True when `fault` can ride a bit lane of a `width`-bit packed
/// memory: every referenced bit plane must exist (victim.bit < width,
/// and aggressor.bit < width for the coupling kinds).  All fault
/// families qualify now — single-cell, coupling/bridge, decoder (AF),
/// static NPSF and retention (DRF) — except the degenerate CFst whose
/// trigger state is outside {0, 1} (inert in FaultyRam; it stays on
/// the scalar reference path instead of teaching the lanes a
/// degenerate encoding).  Width-independent: a fault either rides any
/// lane word or none, so the packed/scalar dispatch split never
/// depends on the lane width.
[[nodiscard]] bool lane_compatible(const Fault& fault, unsigned width = 1);

template <typename W>
class PackedFaultRamT {
 public:
  using Word = W;
  static constexpr unsigned kLanes = LaneTraits<W>::kLanes;
  static constexpr unsigned kMaxWidth = 32;

  /// A packed array of `cells` `width`-bit cells, all lanes
  /// zero-filled, no faults.  Throws std::invalid_argument when cells
  /// < 1 or width is outside [1, 32].
  explicit PackedFaultRamT(Addr cells, unsigned width = 1);

  [[nodiscard]] Addr size() const { return size_; }
  [[nodiscard]] unsigned width() const { return width_; }
  [[nodiscard]] unsigned lanes_used() const { return lanes_used_; }
  /// Mask with one bit set per occupied lane (low lanes_used() bits).
  [[nodiscard]] W active_mask() const { return lane_mask_low<W>(lanes_used_); }

  /// Returns to the just-constructed state (all lanes zero, no faults,
  /// counters zero) without releasing storage.  Only the sites dirtied
  /// by faults pay a per-site cost; the data array is one memset.
  void reset();

  /// Assigns `fault` to the next free lane and returns its index.
  /// State conditions (CFst, bridge, NPSF) are enforced against the
  /// lane's current contents immediately and a retention victim's
  /// charge is stamped with the current clock, matching
  /// FaultyRam::inject.  An NPSF fault whose neighbourhood is
  /// incomplete (no grid, border victim, pattern > 15) still consumes
  /// a lane but registers no effect — it is inert in FaultyRam too, so
  /// the lane simply never mismatches.  Throws std::invalid_argument
  /// when the fault is not lane_compatible() for this width, a
  /// referenced cell is out of range, a two-cell fault has aggressor
  /// == victim, or a retention fault has delay == 0;
  /// std::length_error when all kLanes lanes are taken.
  unsigned add_fault(const Fault& fault);

  /// Reads every lane's bit of cell `addr` at once, applying each
  /// lane's retention decay and read-logic fault.  Preconditions:
  /// addr < size(), width() == 1 (word-oriented memories use
  /// read_word()).  Defined inline below: the campaign replay loops
  /// issue millions of these per batch, so the fault-free-cell fast
  /// path must inline into them.
  W read(Addr addr);

  /// Writes bit lane L of `value` to cell `addr` in lane L's memory,
  /// applying each lane's write fault and firing each lane's coupling
  /// and NPSF effects (this cell as aggressor, victim, bridge endpoint
  /// or neighbourhood member).  Preconditions: addr < size(), width()
  /// == 1.  Defined inline below; batches with only single-cell faults
  /// skip the two-cell/NPSF fire steps entirely (has_two_cell_,
  /// has_npsf_).
  void write(Addr addr, W value);

  /// Reads all width() planes of `cell` into out[0..width()), counting
  /// one operation (one clock tick) for the whole word — the packed
  /// equivalent of one FaultyRam::read of a word-oriented memory.
  void read_word(Addr cell, W* out);

  /// Writes planes[0..width()) to `cell`, counting one operation.
  /// Mirrors FaultyRam::physical_write's two phases: every plane lands
  /// first (TF/WDF/SAF per site), then coupling fires per plane in
  /// ascending order and static conditions (CFst, bridge, NPSF) are
  /// re-enforced — so intra-word aggressor transitions see their
  /// victims' new values.
  void write_word(Addr cell, const W* planes);

  /// Idle time (March delay elements, PRT pause checkpoints): advances
  /// the packed operation clock so retention lanes decay analytically
  /// at the next access, exactly like FaultyRam::advance_time.
  void advance_time(std::uint64_t ticks) { idle_ticks_ += ticks; }

  /// Operation clock shared by all lanes: one tick per packed
  /// read/write (word or bit) plus the advance_time() idle ticks —
  /// bit-exact with FaultyRam's clock_, which also ticks once per
  /// access regardless of width.
  [[nodiscard]] std::uint64_t clock() const {
    return reads_ + writes_ + idle_ticks_;
  }

  /// Packed operations issued since the last reset().  Each packed
  /// read/write counts once; a scalar campaign issues the same count
  /// *per fault*, so the per-fault op cost is reads() + writes().
  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  [[nodiscard]] std::uint64_t ops() const { return reads_ + writes_; }

  /// Direct state access for tests (bypasses faults and counters).
  /// `site` = cell * width() + bit plane.
  [[nodiscard]] W peek(Addr site) const { return data_[site]; }

 private:
  /// Per-kind lane masks for one faulty site; a lane's bit is set in
  /// the masks of at most the few sites its single fault references
  /// (two for coupling, five for NPSF).
  struct CellFaults {
    // Single-cell kinds (this site is the victim).
    W saf0{}, saf1{};
    W tf_up{}, tf_down{}, wdf{};
    W rdf{}, drdf{}, irf{}, sof{};
    // Two-cell kinds.  cfin/cfid_*/cfst_agg are registered on the
    // *aggressor* site, cfst_vic on the *victim* site (its writes must
    // re-enforce the condition), bridge on *both* endpoints.
    W cfin{};
    W cfid_up{}, cfid_down{};
    W cfst_agg{}, cfst_vic{};
    W bridge{};
    // Decoder kinds, registered on every site of the *faulty address*
    // (accesses to any other address behave normally — one fault per
    // lane).  The wrong/multi alias cell lives in lane_victim_.
    W af_no{};      // address opens no cell: reads 0, writes lost
    W af_wrong{};   // address opens the alias cell instead
    W af_multi{};   // address opens its own cell and the alias
    // Retention, registered on the victim site: a read latches the
    // decayed value when the clock has run past the lane's delay, a
    // write refreshes the charge.
    W drf{};
    // NPSF neighbourhood membership: npsf_n marks lanes for which this
    // site is the *north* neighbour (and so on for e/s/w), npsf_vic
    // lanes for which it is the base (victim) site.  Together they are
    // the packed analogue of FaultyRam's `touched` test — a write to
    // any site in the 5-cell neighbourhood re-checks the trigger.
    W npsf_n{}, npsf_e{}, npsf_s{}, npsf_w{};
    W npsf_vic{};

    [[nodiscard]] W coupling_any() const {
      return cfin | cfid_up | cfid_down | cfst_agg | cfst_vic | bridge;
    }
    [[nodiscard]] W npsf_any() const {
      return npsf_n | npsf_e | npsf_s | npsf_w | npsf_vic;
    }
  };

  [[nodiscard]] std::size_t site_of(Addr cell, unsigned plane) const {
    return static_cast<std::size_t>(cell) * width_ + plane;
  }

  CellFaults& slot_for(std::size_t site);

  /// Fires the two-cell effects of a write to site `site` that landed
  /// `now` over `old` (per-lane scatter over the few coupled lanes).
  void apply_coupling(std::size_t site, const W& old, const W& now,
                      const CellFaults& f);

  /// Re-checks the NPSF trigger after a write touched site `site`:
  /// refreshes the cached neighbour-value lane words from the site's
  /// new contents, matches all lanes' patterns bit-parallel (four
  /// XOR/OR ops across the direction caches) and forces the victims of
  /// the matching lanes registered on this site.
  void apply_npsf(std::size_t site, const CellFaults& f);

  /// Latches the decayed value into the victim site's lane word for
  /// every retention lane in `m` whose charge has expired on the
  /// packed clock (read path; the charge stamp itself is untouched,
  /// matching FaultyRam::apply_retention's idempotent re-force).
  void apply_retention(std::size_t site, const W& m);

  /// A write to a retention victim's cell refreshes its charge.
  void refresh_retention(const W& m);

  /// Patches a read of plane `plane` for the decoder lanes registered
  /// on it: wrong-access lanes read their alias cell, multi-access
  /// lanes read the wired-AND of both opened cells.
  [[nodiscard]] W apply_af_read(W value, const CellFaults& f, unsigned plane);

  /// Lands a write of `value` in plane `plane` of the alias cells of
  /// the wrong/multi decoder lanes registered on the addressed site
  /// (the write to the addressed site itself was already suppressed
  /// for wrong-access lanes by the caller).
  void apply_af_write(const W& value, const CellFaults& f, unsigned plane);

  Addr size_;
  unsigned width_;
  std::vector<W> data_;
  /// Site -> index into slots_, -1 for fault-free sites — the hot path
  /// pays one branch per access and only faulty sites (a handful per
  /// lane) touch a CellFaults record.
  std::vector<std::int16_t> slot_of_site_;
  std::vector<CellFaults> slots_;
  std::vector<std::size_t> dirty_sites_;
  /// Per-lane second-site metadata, only read for lanes registered in
  /// a coupling/bridge/decoder/NPSF mask.  Coupling, bridge and NPSF
  /// lanes store the victim *site*; the AF kinds store the alias
  /// *cell* (the plane comes from the access).
  std::array<std::size_t, kLanes> lane_victim_{};
  std::array<std::size_t, kLanes> lane_aggressor_{};
  /// Lanes whose CFid/CFst forces the victim to 1 (clear = forces 0).
  W forced1_{};
  /// CFst lanes triggered while the aggressor holds 1 (clear = 0).
  W cfst_state1_{};
  /// Bridge lanes with wired-OR semantics (clear = wired-AND).
  W bridge_or_{};
  /// Non-inert NPSF lanes and their trigger machinery: npat_[d] bit L
  /// is the pattern value lane L requires of its direction-d
  /// neighbour, nval_[d] bit L is that neighbour's *current* value
  /// (kept coherent by apply_npsf — only packed writes can change an
  /// NPSF lane's neighbour bits, because the lane holds no other
  /// fault).  Directions are indexed N=0, E=1, S=2, W=3.
  W npsf_lanes_{};
  std::array<W, 4> npat_{};
  std::array<W, 4> nval_{};
  /// NPSF lanes forcing their victim to 1 (clear = forces 0).
  W npsf_forced1_{};
  /// Retention lanes decaying to 1 (clear = decays to 0), plus the
  /// per-lane charge stamp and decay delay in clock ticks.
  W drf_decay1_{};
  std::array<std::uint64_t, kLanes> drf_refreshed_{};
  std::array<std::uint64_t, kLanes> drf_delay_{};
  unsigned lanes_used_ = 0;
  /// True once any lane holds a two-cell (coupling/bridge) fault —
  /// single-cell-only batches skip the coupling fire step on every
  /// write without even loading the per-site coupling masks.
  bool has_two_cell_ = false;
  /// True once any lane holds a decoder fault — batches without one
  /// skip the remap patches on every access.
  bool has_af_ = false;
  /// Same gates for the NPSF re-check and the retention clock math.
  bool has_npsf_ = false;
  bool has_drf_ = false;
  /// Packed sense-amp history (port 0), one word per bit plane — the
  /// lane analogue of FaultyRam's per-port last_read_ word.
  std::array<W, kMaxWidth> last_read_{};
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t idle_ticks_ = 0;
};

/// The status-quo 64-lane instantiation — the name the whole campaign
/// layer and test suite grew up on.
using PackedFaultRam = PackedFaultRamT<LaneWord>;

// The packed member definitions live in packed_fault_ram.cpp with
// explicit instantiations for the supported lane words; only the
// per-access hot path is inline here.
extern template class PackedFaultRamT<LaneWord>;
extern template class PackedFaultRamT<WideWord<4>>;
extern template class PackedFaultRamT<WideWord<8>>;

template <typename W>
inline W PackedFaultRamT<W>::read(Addr addr) {
  assert(addr < size_);
  assert(width_ == 1);
  ++reads_;
  W value;
  const std::int16_t slot = slot_of_site_[addr];
  if (slot >= 0) {
    const CellFaults& f = slots_[static_cast<std::size_t>(slot)];
    // DRF: expired charges latch their decayed value before the sense
    // amp looks (FaultyRam::physical_read applies retention first).
    if (has_drf_ && lane_any(f.drf)) apply_retention(addr, f.drf);
    value = data_[addr];
    // RDF: the cell flips and the sense amp sees the flipped value.
    value ^= f.rdf;
    // DRDF: the correct value is returned, the cell flips behind the
    // reader's back.
    data_[addr] = value ^ f.drdf;
    // IRF: inverted data on the bus, cell untouched.
    value ^= f.irf;
    // SOF: the open cell echoes the sense amp's previous read.
    value = (value & ~f.sof) | (last_read_[0] & f.sof);
    // Decoder lanes: a no-access read floats the bus (reads zeros), a
    // wrong/multi access reads the alias cell (wired-AND for multi).
    // Pure bus-level patches — the addressed cell keeps its state.
    if (has_af_) {
      value &= ~f.af_no;
      if (lane_any(f.af_wrong | f.af_multi)) {
        value = apply_af_read(value, f, 0);
      }
    }
    // Coupling/NPSF lanes are untouched by reads: their lane has no
    // read-logic fault, and a read never changes the bits a condition
    // watches (FaultyRam likewise only enforces conditions on writes).
  } else {
    value = data_[addr];
  }
  last_read_[0] = value;
  return value;
}

template <typename W>
inline void PackedFaultRamT<W>::write(Addr addr, W value) {
  assert(addr < size_);
  assert(width_ == 1);
  ++writes_;
  const W old = data_[addr];
  W nb = value;
  const std::int16_t slot = slot_of_site_[addr];
  if (slot < 0) {
    data_[addr] = nb;
    return;
  }
  // A lane holds exactly one fault, so the per-kind masks are
  // lane-disjoint and the sequential updates below never interact
  // across kinds.
  const CellFaults& f = slots_[static_cast<std::size_t>(slot)];
  nb ^= f.wdf & ~(old ^ nb);   // WDF: non-transition write disturbs
  nb &= ~(f.tf_up & ~old);     // TF up: 0 -> 1 writes fail
  nb |= f.tf_down & old;       // TF down: 1 -> 0 writes fail
  nb = (nb & ~f.saf0) | f.saf1;
  if (has_af_) {
    // Decoder lanes: a no-access or wrong-access write never reaches
    // the addressed cell; wrong/multi lanes land the raw value in
    // their alias cell instead (no other fault lives in those lanes).
    const W suppressed = f.af_no | f.af_wrong;
    nb = (nb & ~suppressed) | (old & suppressed);
    data_[addr] = nb;
    if (lane_any(f.af_wrong | f.af_multi)) apply_af_write(value, f, 0);
  } else {
    data_[addr] = nb;
  }
  // A write refreshes the charge of every retention victim in the cell
  // (FaultyRam stamps refreshed_at_ right after the word lands).
  if (has_drf_ && lane_any(f.drf)) refresh_retention(f.drf);
  if (has_two_cell_ && lane_any(f.coupling_any())) {
    apply_coupling(addr, old, nb, f);
  }
  // NPSF is re-checked on every write to a neighbourhood site, even a
  // non-transition one (FaultyRam enforces conditions after every
  // physical_write).
  if (has_npsf_ && lane_any(f.npsf_any())) apply_npsf(addr, f);
}

}  // namespace prt::mem
