#include "analysis/markov.hpp"

#include <cmath>

namespace prt::analysis {

double per_iteration_detection(mem::FaultClass cls,
                               const MarkovParams& params) {
  const double n = static_cast<double>(params.n);
  switch (cls) {
    case mem::FaultClass::kSaf:
      return 0.5;
    case mem::FaultClass::kTf:
      return 0.25;
    case mem::FaultClass::kWdf:
      return 0.5;
    case mem::FaultClass::kReadLogic:
      // RDF/DRDF/IRF activate on every read (p = 1); SOF at 3/4.  The
      // class mixes them 3:1.
      return (3.0 * 1.0 + 0.75) / 4.0;
    case mem::FaultClass::kCfSt:
      return 0.25;
    case mem::FaultClass::kBridge:
      // A bridge ties the pair continuously; each of the two writes is
      // checked against the partner's value in two epochs (before and
      // after the partner's own write), and each check trips when the
      // writer expects the recessive value while the partner holds the
      // dominant one (probability 1/4): p = 1 - (3/4)^4.  Correlated
      // re-collapses push the true rate slightly higher.
      return 1.0 - std::pow(0.75, 4.0);
    case mem::FaultClass::kCfIn:
      // Aggressor visited exactly one position after the victim (1/n
      // for a random permutation) and actually transitioning (1/2).
      return 0.5 / n;
    case mem::FaultClass::kCfId:
      // CFin rate further conditioned on the transition direction (1/2)
      // and on the victim holding the complement of the forced value
      // (1/2); averaged over the 4 variants this is 1/(2n) * 1/2.
      return 0.25 / n;
    case mem::FaultClass::kAf:
      // Wrong-access under pi-testing is self-consistent: the faulty
      // address writes AND reads the substituted cell, so a mismatch
      // surfaces only when the substituted cell's own legitimate write
      // lands inside the faulty address's write-to-read window — the
      // same two-position window as transition coupling: p ~ 2/n.
      // (No-access faults, by contrast, are near-certain: the floating
      // read must match the expected word everywhere.)
      return 2.0 / n;
    case mem::FaultClass::kNpsf:
      // Neighbourhood pattern (4 bits) must match while the victim
      // expects the complement of the forced value.
      return (1.0 / 16.0) * 0.5;
    case mem::FaultClass::kRetention:
      // Retention faults need an explicit pause longer than the decay
      // delay; the pause-less random-iteration model never waits.
      return 0.0;
  }
  return 0.0;
}

double cumulative_detection(mem::FaultClass cls, const MarkovParams& params,
                            unsigned iterations) {
  const double p = per_iteration_detection(cls, params);
  return 1.0 - std::pow(1.0 - p, static_cast<double>(iterations));
}

}  // namespace prt::analysis
