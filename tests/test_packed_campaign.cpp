// Word-packed SIMD fault lanes (mem/packed_fault_ram, core/prt_packed,
// and the lane-batching layer in analysis/campaign_engine).
//
// The load-bearing property is bit-identity: every lane of the packed
// ram must behave exactly like a scalar FaultyRam holding that lane's
// single fault, and the packed campaign path must reproduce the serial
// scalar CampaignResult — coverage, per-class counts, escape indices
// and op totals — on any universe.
#include "core/prt_packed.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "analysis/campaign_engine.hpp"
#include "mem/fault_injector.hpp"
#include "mem/fault_universe.hpp"
#include "mem/packed_fault_ram.hpp"

namespace prt {
namespace {

std::uint64_t next_rand(std::uint64_t& x) {
  x = x * 6364136223846793005ULL + 1442695040888963407ULL;
  return x ^ (x >> 29);
}

void expect_identical(const analysis::CampaignResult& a,
                      const analysis::CampaignResult& b) {
  EXPECT_EQ(a.overall, b.overall);
  EXPECT_EQ(a.by_class, b.by_class);
  EXPECT_EQ(a.escapes, b.escapes);
  EXPECT_EQ(a.ops, b.ops);
}

// --- lane compatibility ------------------------------------------------

TEST(LaneCompatible, SingleBitKindsRideLanesOthersDoNot) {
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::saf({3, 0}, 0)));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::saf({3, 0}, 1)));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::tf({3, 0}, true)));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::tf({3, 0}, false)));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::wdf({3, 0})));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::rdf({3, 0})));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::drdf({3, 0})));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::irf({3, 0})));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::sof({3, 0})));
  // Two-cell coupling faults ride a lane too: the aggressor/victim
  // pair lives in one lane's memory.
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::cf_in({1, 0}, {2, 0})));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::cf_id({1, 0}, {2, 0}, true, 1)));
  EXPECT_TRUE(
      mem::lane_compatible(mem::Fault::cf_id({1, 0}, {2, 0}, false, 0)));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::cf_st({1, 0}, {2, 0}, 0, 1)));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::cf_st({1, 0}, {2, 0}, 1, 0)));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::bridge({1, 0}, {2, 0}, true)));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::bridge({1, 0}, {2, 0}, false)));
  // Decoder faults ride too: one fault per lane means the remap
  // touches exactly one address and at most one alias cell.
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::af_no_access(1)));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::af_wrong_access(1, 2)));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::af_multi_access(1, 2)));
  // Pattern faults ride: the 4-cell neighbourhood is per-lane
  // metadata like an aggressor/victim pair.  Clock-dependent
  // retention faults ride too: decay advances analytically on the
  // packed clock.
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::npsf_static({5, 0}, 0xF, 0, 4)));
  EXPECT_TRUE(mem::lane_compatible(mem::Fault::retention({1, 0}, 1, 8)));
  // The packed array models a 1-bit-wide memory: bit planes > 0 do not
  // ride, on either end of the pair.
  EXPECT_FALSE(mem::lane_compatible(mem::Fault::saf({3, 1}, 0)));
  EXPECT_FALSE(mem::lane_compatible(mem::Fault::cf_in({1, 1}, {2, 0})));
  EXPECT_FALSE(mem::lane_compatible(mem::Fault::cf_in({1, 0}, {2, 1})));
  // A CFst trigger state beyond {0, 1} never matches a stored bit —
  // FaultyRam treats it as inert, so it stays on the scalar path.
  EXPECT_FALSE(mem::lane_compatible(mem::Fault::cf_st({1, 0}, {2, 0}, 2, 1)));
}

TEST(PackedFaultRam, RejectsIncompatibleAndOverflowingFaults) {
  mem::PackedFaultRam ram(8);
  // Retention with delay == 0 would decay instantly and forever —
  // FaultyRam::inject rejects it, and so does the lane path.
  EXPECT_THROW(ram.add_fault(mem::Fault::retention({1, 0}, 1, 0)),
               std::invalid_argument);
  EXPECT_THROW(ram.add_fault(mem::Fault::saf({8, 0}, 1)),
               std::invalid_argument);
  EXPECT_THROW(ram.add_fault(mem::Fault::cf_in({1, 0}, {8, 0})),
               std::invalid_argument);
  EXPECT_THROW(ram.add_fault(mem::Fault::cf_in({1, 0}, {1, 0})),
               std::invalid_argument);
  EXPECT_THROW(ram.add_fault(mem::Fault::af_wrong_access(1, 8)),
               std::invalid_argument);
  EXPECT_THROW(ram.add_fault(mem::Fault::af_multi_access(1, 8)),
               std::invalid_argument);
  for (unsigned i = 0; i < mem::PackedFaultRam::kLanes; ++i) {
    EXPECT_EQ(ram.add_fault(mem::Fault::saf({i % 8, 0}, 1)), i);
  }
  EXPECT_THROW(ram.add_fault(mem::Fault::saf({0, 0}, 0)), std::length_error);
}

TEST(PackedFaultRam, StuckAtClampsFromInjectionLikeFaultyRam) {
  mem::PackedFaultRam packed(8);
  const unsigned lane = packed.add_fault(mem::Fault::saf({3, 0}, 1));
  // Before any write, the stuck-at-1 lane already reads 1.
  EXPECT_EQ((packed.read(3) >> lane) & 1U, 1U);
  mem::FaultyRam scalar(8, 1);
  scalar.inject(mem::Fault::saf({3, 0}, 1));
  EXPECT_EQ(scalar.read(3, 0), 1U);
}

// --- per-lane differential check against FaultyRam ---------------------

TEST(PackedFaultRam, EveryLaneMatchesScalarFaultyRamOnRandomTraffic) {
  const mem::Addr n = 24;
  // 64 faults cycling through every lane-compatible kind and cell.
  std::vector<mem::Fault> faults;
  for (unsigned i = 0; faults.size() < mem::PackedFaultRam::kLanes; ++i) {
    const mem::BitRef v{i % n, 0};
    switch (i % 9) {
      case 0: faults.push_back(mem::Fault::saf(v, 0)); break;
      case 1: faults.push_back(mem::Fault::saf(v, 1)); break;
      case 2: faults.push_back(mem::Fault::tf(v, true)); break;
      case 3: faults.push_back(mem::Fault::tf(v, false)); break;
      case 4: faults.push_back(mem::Fault::wdf(v)); break;
      case 5: faults.push_back(mem::Fault::rdf(v)); break;
      case 6: faults.push_back(mem::Fault::drdf(v)); break;
      case 7: faults.push_back(mem::Fault::irf(v)); break;
      case 8: faults.push_back(mem::Fault::sof(v)); break;
    }
  }
  mem::PackedFaultRam packed(n);
  std::vector<std::unique_ptr<mem::FaultyRam>> scalars;
  for (const mem::Fault& f : faults) {
    packed.add_fault(f);
    scalars.push_back(std::make_unique<mem::FaultyRam>(n, 1));
    scalars.back()->inject(f);
  }
  std::uint64_t x = 0xC0FFEE;
  for (int step = 0; step < 4000; ++step) {
    const mem::Addr addr = static_cast<mem::Addr>(next_rand(x) % n);
    if (next_rand(x) & 1) {
      const mem::LaneWord value = next_rand(x);
      packed.write(addr, value);
      for (unsigned lane = 0; lane < scalars.size(); ++lane) {
        scalars[lane]->write(addr,
                             static_cast<mem::Word>((value >> lane) & 1U), 0);
      }
    } else {
      const mem::LaneWord got = packed.read(addr);
      for (unsigned lane = 0; lane < scalars.size(); ++lane) {
        ASSERT_EQ((got >> lane) & 1U, scalars[lane]->read(addr, 0))
            << "step " << step << " lane " << lane << " ("
            << faults[lane].describe() << ")";
      }
    }
  }
}

// Coupling lanes: every two-cell kind across varied aggressor/victim
// pairs must match a scalar FaultyRam holding that one fault, op for
// op, under random traffic.
TEST(PackedFaultRam, EveryCouplingLaneMatchesScalarFaultyRam) {
  const mem::Addr n = 24;
  std::vector<mem::Fault> faults;
  for (unsigned i = 0; faults.size() < mem::PackedFaultRam::kLanes; ++i) {
    const mem::BitRef a{i % n, 0};
    const mem::BitRef v{(i + 1 + i % 5) % n, 0};
    switch (i % 11) {
      case 0: faults.push_back(mem::Fault::cf_in(v, a)); break;
      case 1: faults.push_back(mem::Fault::cf_id(v, a, true, 0)); break;
      case 2: faults.push_back(mem::Fault::cf_id(v, a, true, 1)); break;
      case 3: faults.push_back(mem::Fault::cf_id(v, a, false, 0)); break;
      case 4: faults.push_back(mem::Fault::cf_id(v, a, false, 1)); break;
      case 5: faults.push_back(mem::Fault::cf_st(v, a, 0, 0)); break;
      case 6: faults.push_back(mem::Fault::cf_st(v, a, 0, 1)); break;
      case 7: faults.push_back(mem::Fault::cf_st(v, a, 1, 0)); break;
      case 8: faults.push_back(mem::Fault::cf_st(v, a, 1, 1)); break;
      case 9: faults.push_back(mem::Fault::bridge(v, a, true)); break;
      case 10: faults.push_back(mem::Fault::bridge(v, a, false)); break;
    }
  }
  mem::PackedFaultRam packed(n);
  std::vector<std::unique_ptr<mem::FaultyRam>> scalars;
  for (const mem::Fault& f : faults) {
    packed.add_fault(f);
    scalars.push_back(std::make_unique<mem::FaultyRam>(n, 1));
    scalars.back()->inject(f);
  }
  // Injection-time condition enforcement (CFst1 on a zero aggressor
  // forces the victim immediately) must match before any traffic.
  for (mem::Addr addr = 0; addr < n; ++addr) {
    const mem::LaneWord got = packed.peek(addr);
    for (unsigned lane = 0; lane < scalars.size(); ++lane) {
      ASSERT_EQ((got >> lane) & 1U, scalars[lane]->peek(addr))
          << "post-inject cell " << addr << " lane " << lane << " ("
          << faults[lane].describe() << ")";
    }
  }
  std::uint64_t x = 0xBADC0DE;
  for (int step = 0; step < 6000; ++step) {
    const mem::Addr addr = static_cast<mem::Addr>(next_rand(x) % n);
    if (next_rand(x) & 1) {
      const mem::LaneWord value = next_rand(x);
      packed.write(addr, value);
      for (unsigned lane = 0; lane < scalars.size(); ++lane) {
        scalars[lane]->write(addr,
                             static_cast<mem::Word>((value >> lane) & 1U), 0);
      }
    } else {
      const mem::LaneWord got = packed.read(addr);
      for (unsigned lane = 0; lane < scalars.size(); ++lane) {
        ASSERT_EQ((got >> lane) & 1U, scalars[lane]->read(addr, 0))
            << "step " << step << " lane " << lane << " ("
            << faults[lane].describe() << ")";
      }
    }
  }
}

// Decoder lanes: the three AF kinds across varied address/alias pairs
// must match a scalar FaultyRam holding that one fault, op for op,
// under random traffic (no-access reads zeros and drops writes,
// wrong-access redirects both, multi-access opens both cells and
// wires reads AND).
TEST(PackedFaultRam, EveryDecoderLaneMatchesScalarFaultyRam) {
  const mem::Addr n = 24;
  std::vector<mem::Fault> faults;
  for (unsigned i = 0; faults.size() < mem::PackedFaultRam::kLanes; ++i) {
    const mem::Addr a = i % n;
    const mem::Addr alias = (i + 1 + i % 7) % n;
    switch (i % 3) {
      case 0: faults.push_back(mem::Fault::af_no_access(a)); break;
      case 1: faults.push_back(mem::Fault::af_wrong_access(a, alias)); break;
      case 2: faults.push_back(mem::Fault::af_multi_access(a, alias)); break;
    }
  }
  mem::PackedFaultRam packed(n);
  std::vector<std::unique_ptr<mem::FaultyRam>> scalars;
  for (const mem::Fault& f : faults) {
    packed.add_fault(f);
    scalars.push_back(std::make_unique<mem::FaultyRam>(n, 1));
    scalars.back()->inject(f);
  }
  std::uint64_t x = 0xDEC0DE;
  for (int step = 0; step < 6000; ++step) {
    const mem::Addr addr = static_cast<mem::Addr>(next_rand(x) % n);
    if (next_rand(x) & 1) {
      const mem::LaneWord value = next_rand(x);
      packed.write(addr, value);
      for (unsigned lane = 0; lane < scalars.size(); ++lane) {
        scalars[lane]->write(addr,
                             static_cast<mem::Word>((value >> lane) & 1U), 0);
      }
    } else {
      const mem::LaneWord got = packed.read(addr);
      for (unsigned lane = 0; lane < scalars.size(); ++lane) {
        ASSERT_EQ((got >> lane) & 1U, scalars[lane]->read(addr, 0))
            << "step " << step << " lane " << lane << " ("
            << faults[lane].describe() << ")";
      }
    }
  }
}

// Neighbourhood lanes: static NPSF faults across interior victims,
// every pattern/forced-value combination, plus border and degenerate
// neighbourhoods (inert on both paths — they consume a lane that never
// fires) must match a scalar FaultyRam holding that one fault, op for
// op, under random traffic.
TEST(PackedFaultRam, EveryNpsfLaneMatchesScalarFaultyRam) {
  const mem::Addr n = 36;  // 6 x 6 grid
  const mem::Addr cols = 6;
  std::vector<mem::Fault> faults;
  for (unsigned i = 0; faults.size() < mem::PackedFaultRam::kLanes; ++i) {
    if (i % 8 == 7) {
      // Border victims (row 0 / west edge) and a no-grid fault: inert.
      const mem::Addr victim = (i % 16 == 7) ? i % cols : (i / 8) * cols % n;
      faults.push_back(
          mem::Fault::npsf_static({victim, 0}, i % 16, i & 1,
                                  (i % 16 == 15) ? 0 : cols));
    } else {
      const mem::Addr row = 1 + (i / 4) % (n / cols - 2);
      const mem::Addr col = 1 + i % (cols - 2);
      faults.push_back(mem::Fault::npsf_static({row * cols + col, 0}, i % 16,
                                               (i / 16) & 1, cols));
    }
  }
  mem::PackedFaultRam packed(n);
  std::vector<std::unique_ptr<mem::FaultyRam>> scalars;
  for (const mem::Fault& f : faults) {
    packed.add_fault(f);
    scalars.push_back(std::make_unique<mem::FaultyRam>(n, 1));
    scalars.back()->inject(f);
  }
  // Pattern 0b0000 matches the all-zero power-up neighbourhood, so
  // injection-time enforcement must already agree before any traffic.
  for (mem::Addr addr = 0; addr < n; ++addr) {
    const mem::LaneWord got = packed.peek(addr);
    for (unsigned lane = 0; lane < scalars.size(); ++lane) {
      ASSERT_EQ((got >> lane) & 1U, scalars[lane]->peek(addr))
          << "post-inject cell " << addr << " lane " << lane << " ("
          << faults[lane].describe() << ")";
    }
  }
  std::uint64_t x = 0x9F5F1234;
  for (int step = 0; step < 6000; ++step) {
    const mem::Addr addr = static_cast<mem::Addr>(next_rand(x) % n);
    if (next_rand(x) & 1) {
      const mem::LaneWord value = next_rand(x);
      packed.write(addr, value);
      for (unsigned lane = 0; lane < scalars.size(); ++lane) {
        scalars[lane]->write(addr,
                             static_cast<mem::Word>((value >> lane) & 1U), 0);
      }
    } else {
      const mem::LaneWord got = packed.read(addr);
      for (unsigned lane = 0; lane < scalars.size(); ++lane) {
        ASSERT_EQ((got >> lane) & 1U, scalars[lane]->read(addr, 0))
            << "step " << step << " lane " << lane << " ("
            << faults[lane].describe() << ")";
      }
    }
  }
}

// Retention lanes: decay advances analytically from the packed clock
// (one tick per access plus advance_time idle windows) and latches at
// the first read after the pause boundary — bit-exact against
// FaultyRam's per-access decay under random traffic with random pause
// schedules.
TEST(PackedFaultRam, RetentionLanesMatchScalarUnderRandomPauses) {
  const mem::Addr n = 24;
  std::vector<mem::Fault> faults;
  for (unsigned i = 0; faults.size() < mem::PackedFaultRam::kLanes; ++i) {
    faults.push_back(mem::Fault::retention({i % n, 0}, /*decays_to=*/i & 1,
                                           /*delay_ticks=*/1 + (i % 7) * 13));
  }
  mem::PackedFaultRam packed(n);
  std::vector<std::unique_ptr<mem::FaultyRam>> scalars;
  for (const mem::Fault& f : faults) {
    packed.add_fault(f);
    scalars.push_back(std::make_unique<mem::FaultyRam>(n, 1));
    scalars.back()->inject(f);
  }
  std::uint64_t x = 0xDECAF;
  for (int step = 0; step < 4000; ++step) {
    if (next_rand(x) % 5 == 0) {
      // A pause: both clocks advance by the same idle window, which
      // straddles every lane's decay delay sooner or later.
      const std::uint64_t ticks = 1 + next_rand(x) % 40;
      packed.advance_time(ticks);
      for (auto& scalar : scalars) scalar->advance_time(ticks);
      continue;
    }
    const mem::Addr addr = static_cast<mem::Addr>(next_rand(x) % n);
    if (next_rand(x) & 1) {
      const mem::LaneWord value = next_rand(x);
      packed.write(addr, value);
      for (unsigned lane = 0; lane < scalars.size(); ++lane) {
        scalars[lane]->write(addr,
                             static_cast<mem::Word>((value >> lane) & 1U), 0);
      }
    } else {
      const mem::LaneWord got = packed.read(addr);
      for (unsigned lane = 0; lane < scalars.size(); ++lane) {
        ASSERT_EQ((got >> lane) & 1U, scalars[lane]->read(addr, 0))
            << "step " << step << " lane " << lane << " ("
            << faults[lane].describe() << ")";
      }
    }
  }
}

// --- packed PRT evaluation ---------------------------------------------

TEST(RunPrtPacked, SchemePackability) {
  EXPECT_TRUE(core::prt_scheme_packable(core::standard_scheme_bom(16)));
  EXPECT_TRUE(core::prt_scheme_packable(core::extended_scheme_bom(16)));
  EXPECT_TRUE(
      core::prt_scheme_packable(core::retention_scheme(16, 1, 100)));
  // Word-oriented schemes pack too: each GF(2^m) constant multiply
  // compiles to an m x m tap matrix and the feedback stays XOR-only.
  EXPECT_TRUE(core::prt_scheme_packable(core::standard_scheme_wom(16, 4)));
}

// One full batch of lane-compatible faults on a tiny array: each
// lane's detected bit must equal the scalar oracle-backed run_prt
// verdict for that fault alone.
void check_packed_verdicts_on(const core::PrtScheme& scheme, mem::Addr n,
                              const std::vector<mem::Fault>& universe) {
  ASSERT_LE(universe.size(), mem::PackedFaultRam::kLanes);
  const auto oracle = core::make_prt_oracle(scheme, n);
  mem::PackedFaultRam packed(n);
  for (const mem::Fault& f : universe) packed.add_fault(f);
  const std::uint64_t detected =
      core::run_prt_packed(packed, scheme, oracle) & packed.active_mask();
  mem::FaultyRam scalar(n, 1);
  for (unsigned lane = 0; lane < universe.size(); ++lane) {
    scalar.reset(universe[lane]);
    const core::PrtRunOptions opts{.early_abort = false,
                                   .record_iterations = false};
    const bool expected =
        core::run_prt(scalar, scheme, oracle, opts).detected();
    EXPECT_EQ(((detected >> lane) & 1U) != 0, expected)
        << "lane " << lane << " (" << universe[lane].describe() << ")";
    // A packed batch runs the complete scheme, so its op count matches
    // the scalar per-fault cost.
    EXPECT_EQ(packed.ops(), scalar.total_stats().total());
  }
}

void check_packed_verdicts(const core::PrtScheme& scheme, mem::Addr n) {
  check_packed_verdicts_on(
      scheme, n, mem::single_cell_universe(n, 1, /*read_logic=*/true));
}

/// All 9 CFin/CFid/CFst variants on 7 ascending adjacent pairs — 63
/// faults, one batch.
std::vector<mem::Fault> small_coupling_universe(mem::Addr n) {
  std::vector<std::pair<mem::Addr, mem::Addr>> pairs;
  for (mem::Addr c = 0; c < 7 && c + 1 < n; ++c) pairs.emplace_back(c, c + 1);
  return mem::coupling_universe(pairs, /*bit=*/0);
}

TEST(RunPrtPacked, LaneVerdictsMatchScalarStandardScheme) {
  check_packed_verdicts(core::standard_scheme_bom(7), 7);
}

TEST(RunPrtPacked, LaneVerdictsMatchScalarExtendedScheme) {
  check_packed_verdicts(core::extended_scheme_bom(7), 7);
}

TEST(RunPrtPacked, LaneVerdictsMatchScalarWithMisr) {
  core::PrtScheme scheme = core::standard_scheme_bom(7);
  scheme.misr_poly = 0b100101;  // degree-5 signature over the read stream
  check_packed_verdicts(scheme, 7);
}

TEST(RunPrtPacked, CouplingLaneVerdictsMatchScalarStandardScheme) {
  check_packed_verdicts_on(core::standard_scheme_bom(16), 16,
                           small_coupling_universe(16));
}

TEST(RunPrtPacked, CouplingLaneVerdictsMatchScalarExtendedScheme) {
  check_packed_verdicts_on(core::extended_scheme_bom(16), 16,
                           small_coupling_universe(16));
}

// Per-lane early abort: the detected mask is unchanged and the
// reported scalar-equivalent op count reproduces exactly what
// run_prt(..., {.early_abort = true}) issues per fault.
TEST(RunPrtPacked, EarlyAbortKeepsVerdictsAndMatchesScalarAbortOps) {
  const mem::Addr n = 16;
  for (const bool misr : {false, true}) {
    core::PrtScheme scheme = core::extended_scheme_bom(n);
    if (misr) scheme.misr_poly = 0b1000011;
    const auto oracle = core::make_prt_oracle(scheme, n);
    auto universe = mem::single_cell_universe(n, 1, /*read_logic=*/true);
    const auto coupling = small_coupling_universe(n);
    universe.insert(universe.end(), coupling.begin(), coupling.end());
    mem::FaultyRam scalar(n, 1);
    for (std::size_t base = 0; base < universe.size();
         base += mem::PackedFaultRam::kLanes) {
      const std::size_t count = std::min<std::size_t>(
          mem::PackedFaultRam::kLanes, universe.size() - base);
      mem::PackedFaultRam packed(n);
      for (std::size_t j = 0; j < count; ++j) {
        packed.add_fault(universe[base + j]);
      }
      mem::PackedFaultRam packed_abort(n);
      for (std::size_t j = 0; j < count; ++j) {
        packed_abort.add_fault(universe[base + j]);
      }
      const auto full =
          core::run_prt_packed(packed, scheme, oracle, {.early_abort = false});
      const auto abort = core::run_prt_packed(packed_abort, scheme, oracle,
                                              {.early_abort = true});
      EXPECT_EQ(full.detected & packed.active_mask(),
                abort.detected & packed_abort.active_mask());
      std::uint64_t scalar_abort_ops = 0;
      for (std::size_t j = 0; j < count; ++j) {
        scalar.reset(universe[base + j]);
        const core::PrtRunOptions opts{.early_abort = true,
                                       .record_iterations = false};
        (void)core::run_prt(scalar, scheme, oracle, opts);
        scalar_abort_ops += scalar.total_stats().total();
      }
      EXPECT_EQ(abort.scalar_ops, scalar_abort_ops)
          << "batch at " << base << " misr=" << misr;
    }
  }
}

/// NPSF interior victims (4-wide grid, varied pattern/forced values)
/// interleaved with retention faults of both polarities and varied
/// delays on every cell.
std::vector<mem::Fault> npsf_retention_universe(mem::Addr n) {
  const mem::Addr cols = 4;
  std::vector<mem::Fault> u;
  for (mem::Addr c = 0; c < n; ++c) {
    const mem::Addr row = c / cols;
    const mem::Addr col = c % cols;
    if (row >= 1 && col >= 1 && col + 1 < cols && c + cols < n) {
      u.push_back(mem::Fault::npsf_static({c, 0}, static_cast<unsigned>(c) % 16,
                                          c & 1, cols));
    }
    u.push_back(
        mem::Fault::retention({c, 0}, c & 1, 50 + (c % 5) * 100));
  }
  return u;
}

// Abort-op parity for the NPSF and retention lanes: across sizes and
// schemes (including the pause-bearing retention scheme, whose idle
// windows trip the analytic decay), the packed early-abort run must
// keep every verdict and reproduce the scalar early-abort op count
// fault for fault.
TEST(RunPrtPacked, NpsfRetentionAbortOpsMatchScalar) {
  for (const mem::Addr n : {mem::Addr{17}, mem::Addr{64}, mem::Addr{256}}) {
    const auto universe = npsf_retention_universe(n);
    for (const bool retention_pauses : {false, true}) {
      const core::PrtScheme scheme = retention_pauses
                                         ? core::retention_scheme(n, 1, 1000)
                                         : core::extended_scheme_bom(n);
      const auto oracle = core::make_prt_oracle(scheme, n);
      mem::FaultyRam scalar(n, 1);
      for (std::size_t base = 0; base < universe.size();
           base += mem::PackedFaultRam::kLanes) {
        const std::size_t count = std::min<std::size_t>(
            mem::PackedFaultRam::kLanes, universe.size() - base);
        mem::PackedFaultRam packed(n);
        mem::PackedFaultRam packed_abort(n);
        for (std::size_t j = 0; j < count; ++j) {
          packed.add_fault(universe[base + j]);
          packed_abort.add_fault(universe[base + j]);
        }
        const auto full = core::run_prt_packed(packed, scheme, oracle,
                                               {.early_abort = false});
        const auto abort = core::run_prt_packed(packed_abort, scheme, oracle,
                                                {.early_abort = true});
        EXPECT_EQ(full.detected & packed.active_mask(),
                  abort.detected & packed_abort.active_mask());
        std::uint64_t scalar_abort_ops = 0;
        for (std::size_t j = 0; j < count; ++j) {
          scalar.reset(universe[base + j]);
          const core::PrtRunOptions opts{.early_abort = true,
                                         .record_iterations = false};
          const bool expected =
              core::run_prt(scalar, scheme, oracle, opts).detected();
          scalar_abort_ops += scalar.total_stats().total();
          EXPECT_EQ(((full.detected >> j) & 1U) != 0, expected)
              << "n=" << n << " lane " << j << " ("
              << universe[base + j].describe() << ")";
        }
        EXPECT_EQ(abort.scalar_ops, scalar_abort_ops)
            << "n=" << n << " batch at " << base
            << " retention_pauses=" << retention_pauses;
      }
    }
  }
}

// --- campaign-level parity (the acceptance criterion) -------------------

analysis::CampaignResult serial_scalar_reference(
    std::span<const mem::Fault> universe, const core::PrtScheme& scheme,
    const analysis::CampaignOptions& opt) {
  return analysis::run_campaign(universe, analysis::prt_algorithm(scheme),
                                opt);
}

TEST(PackedCampaign, BitIdenticalToSerialScalarOnClassical256) {
  const mem::Addr n = 256;
  const auto universe = mem::classical_universe(n);
  const auto scheme = core::extended_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;
  const auto reference = serial_scalar_reference(universe, scheme, opt);
  for (unsigned threads : {1u, 4u}) {
    analysis::EngineOptions eng;
    eng.threads = threads;
    eng.packed = true;
    expect_identical(reference,
                     analysis::run_prt_campaign(universe, scheme, opt, eng));
  }
}

TEST(PackedCampaign, BitIdenticalToSerialScalarOnClassical1024) {
  const mem::Addr n = 1024;
  const auto universe = mem::classical_universe(n);
  const auto scheme = core::standard_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;
  const auto reference = serial_scalar_reference(universe, scheme, opt);
  analysis::EngineOptions eng;
  eng.packed = true;
  expect_identical(reference,
                   analysis::run_prt_campaign(universe, scheme, opt, eng));
}

// The van de Goor universe interleaves packed (single-cell, read-logic)
// and scalar (coupling, decoder) faults within every shard, exercising
// the escape re-sort and the per-class merge.
TEST(PackedCampaign, BitIdenticalToSerialScalarOnVanDeGoor) {
  const mem::Addr n = 48;
  const auto universe = mem::van_de_goor_universe(n);
  const auto scheme = core::extended_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;
  const auto reference = serial_scalar_reference(universe, scheme, opt);
  analysis::EngineOptions eng;
  eng.threads = 3;  // uneven shards split batches at arbitrary points
  eng.packed = true;
  expect_identical(reference,
                   analysis::run_prt_campaign(universe, scheme, opt, eng));
}

// --- early abort composed with packing ---------------------------------

void expect_identical_verdicts(const analysis::CampaignResult& a,
                               const analysis::CampaignResult& b) {
  EXPECT_EQ(a.overall, b.overall);
  EXPECT_EQ(a.by_class, b.by_class);
  EXPECT_EQ(a.escapes, b.escapes);
}

/// The packed+abort engine must (a) reproduce the scalar early-abort
/// engine bit-for-bit *including ops*, and (b) reproduce the no-abort
/// reference's verdicts, coverage and escapes.
void check_abort_composition(std::span<const mem::Fault> universe,
                             const core::PrtScheme& scheme,
                             const analysis::CampaignOptions& opt,
                             const analysis::CampaignResult& reference) {
  analysis::EngineOptions scalar_abort;
  scalar_abort.threads = 2;
  scalar_abort.packed = false;
  scalar_abort.early_abort = true;
  analysis::EngineOptions packed_abort = scalar_abort;
  packed_abort.packed = true;
  const auto a =
      analysis::run_prt_campaign(universe, scheme, opt, scalar_abort);
  const auto b =
      analysis::run_prt_campaign(universe, scheme, opt, packed_abort);
  expect_identical(a, b);
  expect_identical_verdicts(reference, b);
  EXPECT_LE(b.ops, reference.ops);
}

TEST(PackedCampaign, PerLaneAbortBitIdenticalOnClassical256) {
  const mem::Addr n = 256;
  const auto universe = mem::classical_universe(n);
  const auto scheme = core::extended_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;
  check_abort_composition(universe, scheme, opt,
                          serial_scalar_reference(universe, scheme, opt));
}

TEST(PackedCampaign, PerLaneAbortBitIdenticalOnClassical1024) {
  const mem::Addr n = 1024;
  const auto universe = mem::classical_universe(n);
  const auto scheme = core::standard_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;
  check_abort_composition(universe, scheme, opt,
                          serial_scalar_reference(universe, scheme, opt));
}

TEST(PackedCampaign, PerLaneAbortBitIdenticalOnVanDeGoor) {
  const mem::Addr n = 48;
  const auto universe = mem::van_de_goor_universe(n);
  const auto scheme = core::extended_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;
  check_abort_composition(universe, scheme, opt,
                          serial_scalar_reference(universe, scheme, opt));
}

TEST(PackedCampaign, PerLaneAbortBitIdenticalWithMisr) {
  const mem::Addr n = 64;
  const auto universe = mem::van_de_goor_universe(n);
  core::PrtScheme scheme = core::standard_scheme_bom(n);
  scheme.misr_poly = 0b1000011;  // degree-6
  analysis::CampaignOptions opt;
  opt.n = n;
  check_abort_composition(universe, scheme, opt,
                          serial_scalar_reference(universe, scheme, opt));
}

TEST(PackedCampaign, MisrEnabledCampaignStaysBitIdentical) {
  const mem::Addr n = 64;
  const auto universe = mem::single_cell_universe(n, 1, /*read_logic=*/true);
  core::PrtScheme scheme = core::standard_scheme_bom(n);
  scheme.misr_poly = 0b1000011;  // degree-6
  analysis::CampaignOptions opt;
  opt.n = n;
  const auto reference = serial_scalar_reference(universe, scheme, opt);
  analysis::EngineOptions eng;
  eng.packed = true;
  expect_identical(reference,
                   analysis::run_prt_campaign(universe, scheme, opt, eng));
}

// Word-oriented campaigns ride the lanes too: m = 4 bit planes per
// cell, GF(16) feedback through the transcript's compiled tap
// matrices.  The packed engine must reproduce the serial scalar
// reference bit for bit on the full mixed universe (single-cell, read
// logic, inter- and intra-word coupling, bridges, decoder faults).
TEST(PackedCampaign, WomCampaignBitIdenticalToSerialScalar) {
  const mem::Addr n = 24;
  const unsigned m = 4;
  const auto universe = mem::make_universe(n, m, {.npsf = false});
  const auto scheme = core::standard_scheme_wom(n, m);
  analysis::CampaignOptions opt;
  opt.n = n;
  opt.m = m;
  const auto reference = serial_scalar_reference(universe, scheme, opt);
  for (const unsigned threads : {1u, 3u}) {
    analysis::EngineOptions eng;
    eng.threads = threads;
    eng.packed = true;
    const auto got = analysis::run_prt_campaign(universe, scheme, opt, eng);
    expect_identical(reference, got);
    // Every fault of this universe rides a lane at width 4.
    EXPECT_EQ(got.packed_faults, got.overall.total);
    EXPECT_EQ(got.scalar_faults, 0u);
  }
}

// Early abort composes with word-oriented packing: per-lane analytic
// op accounting must equal the scalar abort reference over GF(16).
TEST(PackedCampaign, WomPerLaneAbortBitIdentical) {
  const mem::Addr n = 24;
  const unsigned m = 4;
  const auto universe = mem::single_cell_universe(n, m, /*read_logic=*/true);
  const auto scheme = core::standard_scheme_wom(n, m);
  analysis::CampaignOptions opt;
  opt.n = n;
  opt.m = m;
  check_abort_composition(universe, scheme, opt,
                          serial_scalar_reference(universe, scheme, opt));
}

// NPSF + retention universes ride the lanes end to end: the packed
// campaign (with and without early abort) must reproduce the serial
// scalar reference bit for bit, with zero scalar fallbacks.
TEST(PackedCampaign, NpsfRetentionBitIdenticalToSerialScalar) {
  const mem::Addr n = 64;
  const auto universe = npsf_retention_universe(n);
  const auto scheme = core::retention_scheme(n, 1, 1000);
  analysis::CampaignOptions opt;
  opt.n = n;
  const auto reference = serial_scalar_reference(universe, scheme, opt);
  for (const unsigned threads : {1u, 3u}) {
    analysis::EngineOptions eng;
    eng.threads = threads;
    eng.packed = true;
    const auto got = analysis::run_prt_campaign(universe, scheme, opt, eng);
    expect_identical(reference, got);
    EXPECT_EQ(got.packed_faults, got.overall.total);
    EXPECT_EQ(got.scalar_faults, 0u);
  }
  check_abort_composition(universe, scheme, opt, reference);
}

// --- dispatch tallies ----------------------------------------------------

// packed_faults / scalar_faults partition the universe: a packed
// engine routes every lane-compatible fault through a batch (only the
// degenerate CFst trigger state falls back), a scalar engine routes
// everything per fault, and the serial reference tallies scalar.
TEST(PackedCampaign, DispatchTalliesPartitionTheUniverse) {
  const mem::Addr n = 48;
  auto universe = mem::van_de_goor_universe(n);
  // One degenerate CFst trigger state (> 1): inert in FaultyRam, kept
  // on the scalar reference path by lane_compatible.
  universe.push_back(mem::Fault::cf_st({1, 0}, {2, 0}, /*when=*/2, 1));
  const auto scheme = core::extended_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;

  const auto serial = serial_scalar_reference(universe, scheme, opt);
  EXPECT_EQ(serial.scalar_faults, universe.size());
  EXPECT_EQ(serial.packed_faults, 0u);

  analysis::EngineOptions packed_eng;
  packed_eng.packed = true;
  const auto packed =
      analysis::run_prt_campaign(universe, scheme, opt, packed_eng);
  EXPECT_EQ(packed.packed_faults, universe.size() - 1);
  EXPECT_EQ(packed.scalar_faults, 1u);
  EXPECT_EQ(packed.packed_faults + packed.scalar_faults,
            packed.overall.total);

  analysis::EngineOptions scalar_eng;
  scalar_eng.packed = false;
  const auto scalar =
      analysis::run_prt_campaign(universe, scheme, opt, scalar_eng);
  EXPECT_EQ(scalar.scalar_faults, universe.size());
  EXPECT_EQ(scalar.packed_faults, 0u);
}

// --- lane-width x thread-count parity (the tentpole acceptance) ----------

// The ISSUE's acceptance criterion verbatim: campaign outputs must be
// bit-identical across lane widths {64, 256, 512} x thread counts
// {1, 2, 4, 8}, with and without early abort.  Only SchedTelemetry may
// differ (it is excluded from CampaignResult::operator==); wide widths
// must actually engage (wide_faults > 0, max_lanes == width) when the
// shards are big enough to fill half the wide lanes.
TEST(PackedCampaign, BitIdenticalAcrossLaneWidthsAndThreadCounts) {
  const mem::Addr n = 256;
  const auto universe = mem::classical_universe(n);
  const auto scheme = core::extended_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;
  const auto reference = serial_scalar_reference(universe, scheme, opt);
  for (const bool early_abort : {false, true}) {
    analysis::EngineOptions abort_ref_eng;
    abort_ref_eng.threads = 1;
    abort_ref_eng.packed = true;
    abort_ref_eng.early_abort = early_abort;
    abort_ref_eng.lane_width = 64;
    const auto width64_reference =
        analysis::run_prt_campaign(universe, scheme, opt, abort_ref_eng);
    if (!early_abort) expect_identical(reference, width64_reference);
    for (const unsigned lane_width : {64u, 256u, 512u}) {
      for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        analysis::EngineOptions eng;
        eng.threads = threads;
        eng.packed = true;
        eng.early_abort = early_abort;
        eng.lane_width = lane_width;
        const auto got =
            analysis::run_prt_campaign(universe, scheme, opt, eng);
        // Full bit-identity including the early-abort op accounting.
        expect_identical(width64_reference, got);
        EXPECT_TRUE(width64_reference == got)
            << "width=" << lane_width << " threads=" << threads
            << " early_abort=" << early_abort;
        EXPECT_EQ(got.packed_faults, width64_reference.packed_faults);
        if (lane_width > 64) {
          // This universe is big enough that every dispatch window
          // fills the wide half; the telemetry must show wide batches.
          EXPECT_GT(got.sched.wide_faults, 0u)
              << "width=" << lane_width << " threads=" << threads;
          EXPECT_EQ(got.sched.max_lanes, lane_width);
          EXPECT_LE(got.sched.wide_faults, got.packed_faults);
        } else {
          EXPECT_EQ(got.sched.wide_faults, 0u);
          EXPECT_EQ(got.sched.max_lanes, 64u);
        }
        EXPECT_GE(got.sched.batches, 1u);
      }
    }
  }
}

// A shard too small to fill half the wide lanes falls back to the
// 64-lane word per batch — still bit-identical, with zero wide faults.
TEST(PackedCampaign, SmallShardsFallBackToNarrowLanes) {
  const mem::Addr n = 8;
  const auto universe = mem::single_cell_universe(n, 1, /*read_logic=*/true);
  ASSERT_LT(universe.size(), 128u);  // below the WideWord<4> threshold
  const auto scheme = core::extended_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;
  const auto reference = serial_scalar_reference(universe, scheme, opt);
  for (const unsigned lane_width : {256u, 512u}) {
    analysis::EngineOptions eng;
    eng.packed = true;
    eng.lane_width = lane_width;
    const auto got = analysis::run_prt_campaign(universe, scheme, opt, eng);
    expect_identical(reference, got);
    EXPECT_EQ(got.sched.wide_faults, 0u) << "width=" << lane_width;
    EXPECT_EQ(got.sched.max_lanes, 64u);
  }
}

// Widths the dispatch layer has no instantiation for are a caller
// error, rejected up front rather than silently rounded.
TEST(PackedCampaign, InvalidLaneWidthIsRejected) {
  const mem::Addr n = 16;
  const auto scheme = core::extended_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;
  for (const unsigned lane_width : {1u, 32u, 128u, 1024u}) {
    analysis::EngineOptions eng;
    eng.lane_width = lane_width;
    EXPECT_THROW(
        (void)analysis::CampaignEngine(scheme, opt, eng),
        std::invalid_argument)
        << "lane_width=" << lane_width;
  }
}

// Mixed packed/scalar universes stay bit-identical at wide widths: the
// scalar remainder is unaffected by the lane word, and the packed
// subset's merge order is batch-index order at any width.
TEST(PackedCampaign, WideWidthBitIdenticalOnVanDeGoorWithAbort) {
  const mem::Addr n = 48;
  const auto universe = mem::van_de_goor_universe(n);
  const auto scheme = core::extended_scheme_bom(n);
  analysis::CampaignOptions opt;
  opt.n = n;
  const auto reference = serial_scalar_reference(universe, scheme, opt);
  for (const unsigned lane_width : {256u, 512u}) {
    analysis::EngineOptions eng;
    eng.threads = 3;
    eng.packed = true;
    eng.lane_width = lane_width;
    const auto got = analysis::run_prt_campaign(universe, scheme, opt, eng);
    expect_identical(reference, got);
  }
  check_abort_composition(universe, scheme, opt, reference);
  // Abort composition at wide width against the scalar abort engine.
  analysis::EngineOptions scalar_abort;
  scalar_abort.threads = 2;
  scalar_abort.packed = false;
  scalar_abort.early_abort = true;
  const auto abort_ref =
      analysis::run_prt_campaign(universe, scheme, opt, scalar_abort);
  for (const unsigned lane_width : {256u, 512u}) {
    analysis::EngineOptions packed_abort;
    packed_abort.threads = 4;
    packed_abort.packed = true;
    packed_abort.early_abort = true;
    packed_abort.lane_width = lane_width;
    expect_identical(abort_ref, analysis::run_prt_campaign(universe, scheme,
                                                           opt, packed_abort));
  }
}

}  // namespace
}  // namespace prt
