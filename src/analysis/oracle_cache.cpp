#include "analysis/oracle_cache.hpp"

#include <chrono>
#include <utility>

#include "core/prt_packed.hpp"
#include "util/fail_point.hpp"

namespace prt::analysis {

namespace {

// Approximate resident cost of an entry for the LRU budget.  This is
// a *budgeting* estimate, not an allocator audit: it counts the heap
// vectors that dominate real entries (transcript op streams scale with
// n × iterations; oracle images with n) and charges structs at sizeof.
// Consistency matters more than precision — the same entry always
// costs the same, so eviction order and budget math are deterministic.

std::size_t transcript_bytes(const core::OpTranscript& t) {
  return t.recs.capacity() * sizeof(core::OpRec) +
         t.iterations.capacity() * sizeof(core::PrtIterSpan) +
         t.march.capacity() * sizeof(core::MarchSegment);
}

std::size_t entry_bytes(const OracleCache::PrtEntry& e) {
  std::size_t bytes = sizeof(e) + transcript_bytes(e.transcript);
  bytes += e.oracle.testers.capacity() * sizeof(core::PiTester);
  for (const auto& it : e.oracle.iterations) {
    bytes += sizeof(it);
    bytes += it.trajectory.order().capacity() * sizeof(mem::Addr);
    bytes += it.fin_expected.capacity() * sizeof(gf::Elem);
    bytes += it.image.capacity() * sizeof(gf::Elem);
  }
  return bytes;
}

std::size_t entry_bytes(const OracleCache::MarchEntry& e) {
  return sizeof(e) + transcript_bytes(e.transcript);
}

}  // namespace

template <typename Entry, typename Build>
std::shared_ptr<const Entry> OracleCache::lookup(
    SlotMap<Entry> OracleCache::*map, char kind, std::string key,
    std::atomic<std::size_t>& builds, Build&& build) {
  // A failed build must never poison the key: the builder evicts its
  // slot before publishing the exception, so the next requester
  // rebuilds from scratch.  A waiter that was already blocked on the
  // failed slot retries the lookup once itself (becoming the new
  // builder if nobody beat it there) instead of just relaying a
  // failure that may have been transient; a second failure propagates.
  for (int attempt = 0;; ++attempt) {
    std::promise<std::shared_ptr<const Entry>> promise;
    std::shared_future<std::shared_ptr<const Entry>> fut;
    {
      util::MutexLock lock(mutex_);
      auto [it, inserted] = (this->*map).try_emplace(key);
      if (!inserted) {
        ++hits_;
        fut = it->second.future;  // someone else built / is building
        if (it->second.in_lru) {
          lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        }
      } else {
        ++misses_;
        it->second.future = promise.get_future().share();
      }
    }
    if (fut.valid()) {
      try {
        return fut.get();  // blocks only while building
      } catch (...) {
        if (attempt > 0) throw;
        continue;
      }
    }
    // First requester: build outside the lock so distinct keys build
    // concurrently and lookups of cached keys never wait on a build.
    // Tests inject build failures here to pin the eviction protocol.
    try {
      util::FailPoint::hit("oracle_cache.build");
      auto entry = std::make_shared<const Entry>(build());
      ++builds;
      promise.set_value(entry);
      {
        util::MutexLock lock(mutex_);
        // Re-find rather than reuse the iterator: a concurrent clear()
        // may have dropped our slot (or a successor build may occupy
        // the key).  Only account a slot that is ours — ready and not
        // yet in the LRU — so a successor's in-flight build is never
        // mis-tagged as complete.
        const auto it = (this->*map).find(key);
        if (it != (this->*map).end() && !it->second.in_lru &&
            it->second.future.wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready) {
          it->second.bytes = entry_bytes(*entry);
          lru_.push_front(LruKey{kind, key});
          it->second.lru_it = lru_.begin();
          it->second.in_lru = true;
          total_bytes_ += it->second.bytes;
          evict_locked();
        }
      }
      return entry;
    } catch (...) {
      // Un-publish the failed slot so a later call can retry, and hand
      // the exception to this caller and to any concurrent waiter.
      {
        util::MutexLock lock(mutex_);
        (this->*map).erase(key);
      }
      promise.set_exception(std::current_exception());
      throw;
    }
  }
}

void OracleCache::evict_locked() {
  while (budget_bytes_ != 0 && total_bytes_ > budget_bytes_ &&
         !lru_.empty()) {
    const LruKey& victim = lru_.back();
    if (victim.first == 'p') {
      const auto it = prt_.find(victim.second);
      if (it != prt_.end()) {
        total_bytes_ -= it->second.bytes;
        prt_.erase(it);
      }
    } else {
      const auto it = march_.find(victim.second);
      if (it != march_.end()) {
        total_bytes_ -= it->second.bytes;
        march_.erase(it);
      }
    }
    lru_.pop_back();
    ++evictions_;
  }
}

std::shared_ptr<const OracleCache::PrtEntry> OracleCache::prt(
    const core::PrtScheme& scheme, mem::Addr n) {
  std::string key =
      core::scheme_fingerprint(scheme) + "|n=" + std::to_string(n);
  return lookup(&OracleCache::prt_, 'p', std::move(key), prt_builds_, [&] {
    PrtEntry entry;
    entry.oracle = core::make_prt_oracle(scheme, n);
    entry.packable = core::prt_scheme_packable(scheme);
    if (entry.packable) {
      entry.transcript = core::make_op_transcript(scheme, entry.oracle);
    }
    return entry;
  });
}

std::shared_ptr<const OracleCache::MarchEntry> OracleCache::march(
    const march::MarchTest& test, mem::Addr n, bool background,
    std::uint64_t delay_ticks) {
  std::string key = march::test_fingerprint(test) + "|n=" + std::to_string(n) +
                    "|bg=" + (background ? "1" : "0") +
                    "|del=" + std::to_string(delay_ticks);
  return lookup(&OracleCache::march_, 'm', std::move(key), march_builds_,
                [&] {
                  return MarchEntry{march::make_march_transcript(
                      test, n, background, delay_ticks)};
                });
}

std::size_t OracleCache::size() const {
  util::MutexLock lock(mutex_);
  return prt_.size() + march_.size();
}

OracleCache::Stats OracleCache::stats() const {
  util::MutexLock lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = prt_.size() + march_.size();
  s.bytes = total_bytes_;
  return s;
}

void OracleCache::set_budget_bytes(std::size_t budget) {
  util::MutexLock lock(mutex_);
  budget_bytes_ = budget;
  evict_locked();
}

std::size_t OracleCache::budget_bytes() const {
  util::MutexLock lock(mutex_);
  return budget_bytes_;
}

void OracleCache::clear() {
  util::MutexLock lock(mutex_);
  prt_.clear();
  march_.clear();
  lru_.clear();
  total_bytes_ = 0;
}

OracleCache& OracleCache::global() {
  static OracleCache cache;
  return cache;
}

}  // namespace prt::analysis
