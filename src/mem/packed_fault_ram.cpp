#include "mem/packed_fault_ram.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace prt::mem {

bool lane_compatible(const Fault& fault) {
  if (fault.victim.bit != 0) return false;
  switch (fault.kind) {
    case FaultKind::kSaf0:
    case FaultKind::kSaf1:
    case FaultKind::kTfUp:
    case FaultKind::kTfDown:
    case FaultKind::kWdf:
    case FaultKind::kRdf:
    case FaultKind::kDrdf:
    case FaultKind::kIrf:
    case FaultKind::kSof:
      return true;
    case FaultKind::kCfSt0:
    case FaultKind::kCfSt1:
      // A trigger state beyond {0, 1} can never match a stored bit;
      // FaultyRam treats such a fault as inert, so leave it on the
      // scalar reference path instead of teaching the lanes a
      // degenerate encoding.
      if (fault.state > 1) return false;
      [[fallthrough]];
    case FaultKind::kCfIn:
    case FaultKind::kCfIdUp0:
    case FaultKind::kCfIdUp1:
    case FaultKind::kCfIdDown0:
    case FaultKind::kCfIdDown1:
    case FaultKind::kBridgeAnd:
    case FaultKind::kBridgeOr:
      // Both halves of the pair live on bit plane 0 of the same lane.
      return fault.aggressor.bit == 0;
    case FaultKind::kAfNoAccess:
    case FaultKind::kAfWrongAccess:
    case FaultKind::kAfMultiAccess:
      // One fault per lane: the remap touches exactly one address and
      // at most one alias cell — a per-lane scatter, like coupling.
      return true;
    default:
      return false;
  }
}

PackedFaultRam::PackedFaultRam(Addr cells)
    : size_(cells), data_(cells, 0), slot_of_cell_(cells, -1) {
  if (cells < 1) {
    throw std::invalid_argument("PackedFaultRam: cells must be >= 1");
  }
  slots_.reserve(2 * kLanes);
  dirty_cells_.reserve(2 * kLanes);
}

void PackedFaultRam::reset() {
  std::fill(data_.begin(), data_.end(), LaneWord{0});
  for (const Addr cell : dirty_cells_) slot_of_cell_[cell] = -1;
  slots_.clear();
  dirty_cells_.clear();
  forced1_ = 0;
  cfst_state1_ = 0;
  bridge_or_ = 0;
  lanes_used_ = 0;
  has_two_cell_ = false;
  has_af_ = false;
  last_read_ = 0;
  reads_ = 0;
  writes_ = 0;
}

PackedFaultRam::CellFaults& PackedFaultRam::slot_for(Addr cell) {
  if (slot_of_cell_[cell] < 0) {
    slot_of_cell_[cell] = static_cast<std::int16_t>(slots_.size());
    slots_.emplace_back();
    dirty_cells_.push_back(cell);
  }
  return slots_[static_cast<std::size_t>(slot_of_cell_[cell])];
}

unsigned PackedFaultRam::add_fault(const Fault& fault) {
  if (!lane_compatible(fault)) {
    throw std::invalid_argument(
        "PackedFaultRam::add_fault: fault is not lane-compatible: " +
        fault.describe());
  }
  if (fault.victim.cell >= size_) {
    throw std::invalid_argument(
        "PackedFaultRam::add_fault: victim out of range: " +
        fault.describe());
  }
  if (is_coupling(fault.kind)) {
    if (fault.aggressor.cell >= size_) {
      throw std::invalid_argument(
          "PackedFaultRam::add_fault: aggressor out of range: " +
          fault.describe());
    }
    if (fault.aggressor == fault.victim) {
      throw std::invalid_argument(
          "PackedFaultRam::add_fault: aggressor must differ from victim: " +
          fault.describe());
    }
  }
  if ((fault.kind == FaultKind::kAfWrongAccess ||
       fault.kind == FaultKind::kAfMultiAccess) &&
      fault.alias >= size_) {
    throw std::invalid_argument(
        "PackedFaultRam::add_fault: alias out of range: " + fault.describe());
  }
  if (lanes_used_ >= kLanes) {
    throw std::length_error("PackedFaultRam::add_fault: all 64 lanes taken");
  }
  const unsigned lane = lanes_used_++;
  has_two_cell_ = has_two_cell_ || is_coupling(fault.kind);
  const LaneWord mask = LaneWord{1} << lane;
  const Addr vic = fault.victim.cell;
  const Addr agg = fault.aggressor.cell;
  // Forces the victim cell's lane bit to `value`, the packed equivalent
  // of FaultyRam's injection-time condition enforcement.
  auto force_bit = [&](Addr cell, unsigned value) {
    data_[cell] = value ? (data_[cell] | mask) : (data_[cell] & ~mask);
  };
  switch (fault.kind) {
    case FaultKind::kSaf0:
      slot_for(vic).saf0 |= mask;
      // Stuck-at victims hold from injection, matching FaultyRam.
      force_bit(vic, 0);
      break;
    case FaultKind::kSaf1:
      slot_for(vic).saf1 |= mask;
      force_bit(vic, 1);
      break;
    case FaultKind::kTfUp:
      slot_for(vic).tf_up |= mask;
      break;
    case FaultKind::kTfDown:
      slot_for(vic).tf_down |= mask;
      break;
    case FaultKind::kWdf:
      slot_for(vic).wdf |= mask;
      break;
    case FaultKind::kRdf:
      slot_for(vic).rdf |= mask;
      break;
    case FaultKind::kDrdf:
      slot_for(vic).drdf |= mask;
      break;
    case FaultKind::kIrf:
      slot_for(vic).irf |= mask;
      break;
    case FaultKind::kSof:
      slot_for(vic).sof |= mask;
      break;
    case FaultKind::kCfIn:
      slot_for(agg).cfin |= mask;
      lane_victim_[lane] = vic;
      break;
    case FaultKind::kCfIdUp0:
    case FaultKind::kCfIdUp1:
      slot_for(agg).cfid_up |= mask;
      lane_victim_[lane] = vic;
      if (fault.kind == FaultKind::kCfIdUp1) forced1_ |= mask;
      break;
    case FaultKind::kCfIdDown0:
    case FaultKind::kCfIdDown1:
      slot_for(agg).cfid_down |= mask;
      lane_victim_[lane] = vic;
      if (fault.kind == FaultKind::kCfIdDown1) forced1_ |= mask;
      break;
    case FaultKind::kCfSt0:
    case FaultKind::kCfSt1: {
      slot_for(agg).cfst_agg |= mask;
      slot_for(vic).cfst_vic |= mask;
      lane_victim_[lane] = vic;
      lane_aggressor_[lane] = agg;
      const unsigned forced = fault.kind == FaultKind::kCfSt1 ? 1U : 0U;
      if (forced) forced1_ |= mask;
      if (fault.state & 1U) cfst_state1_ |= mask;
      // A freshly injected state condition is enforced against the
      // current contents immediately (a defect's effect holds from the
      // moment it exists).
      if (((data_[agg] >> lane) & 1U) == (fault.state & 1U)) {
        force_bit(vic, forced);
      }
      break;
    }
    case FaultKind::kAfNoAccess:
      slot_for(vic).af_no |= mask;
      has_af_ = true;
      break;
    case FaultKind::kAfWrongAccess:
      slot_for(vic).af_wrong |= mask;
      lane_victim_[lane] = fault.alias;
      has_af_ = true;
      break;
    case FaultKind::kAfMultiAccess:
      slot_for(vic).af_multi |= mask;
      lane_victim_[lane] = fault.alias;
      has_af_ = true;
      break;
    case FaultKind::kBridgeAnd:
    case FaultKind::kBridgeOr: {
      slot_for(vic).bridge |= mask;
      slot_for(agg).bridge |= mask;
      lane_victim_[lane] = vic;
      lane_aggressor_[lane] = agg;
      const bool wired_or = fault.kind == FaultKind::kBridgeOr;
      if (wired_or) bridge_or_ |= mask;
      const LaneWord a = (data_[vic] >> lane) & 1U;
      const LaneWord b = (data_[agg] >> lane) & 1U;
      const unsigned tied =
          static_cast<unsigned>(wired_or ? (a | b) : (a & b));
      force_bit(vic, tied);
      force_bit(agg, tied);
      break;
    }
    default:
      break;  // unreachable: lane_compatible() filtered
  }
  return lane;
}

LaneWord PackedFaultRam::apply_af_read(LaneWord value, const CellFaults& f) {
  // Per-lane scatter over the few decoder lanes remapping this cell.
  LaneWord m = f.af_wrong;
  while (m != 0) {
    const unsigned lane = static_cast<unsigned>(std::countr_zero(m));
    m &= m - 1;
    const LaneWord bit = LaneWord{1} << lane;
    // Wrong access: the sense amp sees the alias cell.
    value = (value & ~bit) | (data_[lane_victim_[lane]] & bit);
  }
  m = f.af_multi;
  while (m != 0) {
    const unsigned lane = static_cast<unsigned>(std::countr_zero(m));
    m &= m - 1;
    const LaneWord bit = LaneWord{1} << lane;
    // Multi access: wired-AND of the addressed cell (already in
    // `value` — AF lanes carry no read-logic fault) and the alias.
    value &= ~bit | data_[lane_victim_[lane]];
  }
  return value;
}

void PackedFaultRam::apply_af_write(LaneWord value, const CellFaults& f) {
  LaneWord m = f.af_wrong | f.af_multi;
  while (m != 0) {
    const unsigned lane = static_cast<unsigned>(std::countr_zero(m));
    m &= m - 1;
    const LaneWord bit = LaneWord{1} << lane;
    const Addr alias = lane_victim_[lane];
    data_[alias] = (data_[alias] & ~bit) | (value & bit);
  }
}

void PackedFaultRam::apply_coupling(Addr addr, LaneWord old, LaneWord now,
                                    const CellFaults& f) {
  // Per-lane scatter over the few lanes coupled to this cell.  Lanes
  // are disjoint across the masks (one fault per lane), so the order
  // of the blocks is irrelevant.
  auto for_each_lane = [](LaneWord m, auto&& fn) {
    while (m != 0) {
      const unsigned lane = static_cast<unsigned>(std::countr_zero(m));
      m &= m - 1;
      fn(lane, LaneWord{1} << lane);
    }
  };
  auto force = [&](Addr cell, unsigned lane, LaneWord bit) {
    data_[cell] = (forced1_ >> lane) & 1U ? (data_[cell] | bit)
                                          : (data_[cell] & ~bit);
  };
  const LaneWord up = now & ~old;
  const LaneWord down = old & ~now;

  // CFin: any transition of this (aggressor) cell inverts the victim.
  for_each_lane(f.cfin & (up | down), [&](unsigned lane, LaneWord bit) {
    data_[lane_victim_[lane]] ^= bit;
  });

  // CFid: a matching-direction transition forces the victim.
  for_each_lane((f.cfid_up & up) | (f.cfid_down & down),
                [&](unsigned lane, LaneWord bit) {
                  force(lane_victim_[lane], lane, bit);
                });

  // CFst, this cell as aggressor: the condition is state-based, so it
  // is re-evaluated against the landed value on every write (matching
  // FaultyRam's enforce_conditions after each physical_write).
  for_each_lane(f.cfst_agg & ~(now ^ cfst_state1_),
                [&](unsigned lane, LaneWord bit) {
                  force(lane_victim_[lane], lane, bit);
                });

  // CFst, this cell as victim: a write under a holding condition is
  // forced straight back.
  for_each_lane(f.cfst_vic, [&](unsigned lane, LaneWord bit) {
    const LaneWord agg_bit = (data_[lane_aggressor_[lane]] >> lane) & 1U;
    if (agg_bit == ((cfst_state1_ >> lane) & 1U)) force(addr, lane, bit);
  });

  // Bridge: tie both endpoints to the wired-AND/OR of their bits.
  for_each_lane(f.bridge, [&](unsigned lane, LaneWord bit) {
    const Addr other =
        addr == lane_victim_[lane] ? lane_aggressor_[lane] : lane_victim_[lane];
    const LaneWord a = (data_[addr] >> lane) & 1U;
    const LaneWord b = (data_[other] >> lane) & 1U;
    const LaneWord tied = (bridge_or_ >> lane) & 1U ? (a | b) : (a & b);
    data_[addr] = tied ? (data_[addr] | bit) : (data_[addr] & ~bit);
    data_[other] = tied ? (data_[other] | bit) : (data_[other] & ~bit);
  });
}

}  // namespace prt::mem
