// Full fault-injection campaign with per-class reporting and escape
// listing — the workflow a test engineer would use to qualify a PRT
// scheme for a given memory.
//
//   $ ./fault_campaign [n] [m]
#include <cstdio>
#include <cstdlib>

#include "analysis/coverage.hpp"
#include "analysis/fault_sim.hpp"
#include "mem/fault_universe.hpp"

int main(int argc, char** argv) {
  using namespace prt;
  const mem::Addr n =
      argc > 1 ? static_cast<mem::Addr>(std::atoi(argv[1])) : 64;
  const unsigned m = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;

  mem::UniverseOptions uopt;
  uopt.single_cell = true;
  uopt.read_logic = true;
  uopt.coupling = true;
  uopt.bridges = true;
  uopt.address_decoder = true;
  uopt.intra_word = m > 1;
  uopt.npsf = true;
  uopt.coupling_pair_limit = 2048;  // sample distant pairs
  const auto universe = mem::make_universe(n, m, uopt);
  std::printf("generated %zu faults for a %u x %u-bit memory\n",
              universe.size(), n, m);

  analysis::CampaignOptions opt;
  opt.n = n;
  opt.m = m;

  const core::PrtScheme scheme = m == 1
                                     ? core::extended_scheme_bom(n)
                                     : core::extended_scheme_wom(n, m);
  const auto result = analysis::run_campaign(
      universe, analysis::prt_algorithm(scheme), opt);

  std::vector<analysis::NamedResult> rows;
  rows.push_back({scheme.name, result});
  std::printf("\n%s\n", analysis::coverage_table(rows).str().c_str());

  std::printf("escapes: %zu\n", result.escapes.size());
  const std::size_t show = std::min<std::size_t>(result.escapes.size(), 15);
  for (std::size_t i = 0; i < show; ++i) {
    std::printf("  %s\n", universe[result.escapes[i]].describe().c_str());
  }
  if (result.escapes.size() > show) {
    std::printf("  ... and %zu more\n", result.escapes.size() - show);
  }
  return 0;
}
