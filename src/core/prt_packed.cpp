#include "core/prt_packed.hpp"

#include <bit>
#include <cassert>
#include <vector>

#include "gf/gf2_poly.hpp"
#include "util/bitops.hpp"

namespace prt::core {

namespace {

/// Broadcasts one golden bit to every lane.
constexpr mem::LaneWord bcast(gf::Elem bit) {
  return bit ? ~mem::LaneWord{0} : mem::LaneWord{0};
}

/// 64 independent MISRs, bit-sliced: state bit b of all lanes lives in
/// state[b], so one shift costs O(width) lane-wide XORs instead of 64
/// scalar shifts.  Mirrors lfsr::Misr::shift exactly.
class PackedMisr {
 public:
  explicit PackedMisr(gf::Poly2 poly)
      : poly_(poly),
        width_(static_cast<unsigned>(poly_degree(poly))),
        state_(width_, 0) {}

  void shift(mem::LaneWord input) {
    const mem::LaneWord msb = state_[width_ - 1];
    for (unsigned b = width_; b-- > 1;) {
      state_[b] = state_[b - 1] ^ (((poly_ >> b) & 1U) ? msb : 0);
    }
    state_[0] = (((poly_ & 1U) != 0) ? msb : 0) ^ input;
  }

  /// Lanes whose signature differs from the golden scalar signature.
  [[nodiscard]] mem::LaneWord mismatch(std::uint64_t expected) const {
    mem::LaneWord m = 0;
    for (unsigned b = 0; b < width_; ++b) {
      m |= state_[b] ^ bcast(static_cast<gf::Elem>((expected >> b) & 1U));
    }
    return m;
  }

 private:
  gf::Poly2 poly_;
  unsigned width_;
  std::vector<mem::LaneWord> state_;
};

/// Ops a scalar single-port run of this iteration issues: k init
/// writes, (n-k) windows of k reads + 1 feedback write, k Fin reads,
/// k Init re-reads, and the n verify-pass reads when enabled —
/// deterministic per (scheme, n), which is what lets the packed path
/// reproduce scalar early-abort op accounting analytically.
std::uint64_t iteration_ops(const SchemeIteration& it, mem::Addr n) {
  const std::uint64_t kk = it.g.size() - 1;
  return kk + (n - kk) * (kk + 1) + 2 * kk +
         (it.config.verify_pass ? n : 0);
}

}  // namespace

bool prt_scheme_packable(const PrtScheme& scheme) {
  if (scheme.field_modulus != 0b11) return false;  // GF(2) only
  if (scheme.iterations.empty()) return false;
  for (const SchemeIteration& it : scheme.iterations) {
    if (it.g.size() < 2) return false;
    for (const gf::Elem c : it.g) {
      if (c > 1) return false;
    }
    if (it.config.init.size() != it.g.size() - 1) return false;
    for (const gf::Elem d : it.config.init) {
      if (d > 1) return false;
    }
  }
  return true;
}

PackedVerdict run_prt_packed(mem::PackedFaultRam& ram,
                             const PrtScheme& scheme,
                             const PrtOracle& oracle,
                             const PackedRunOptions& options) {
  assert(prt_scheme_packable(scheme));
  assert(oracle.iterations.size() == scheme.iterations.size());
  assert(oracle.n == ram.size());
  const mem::Addr n = ram.size();
  const bool use_misr = scheme.misr_poly != 0;
  const mem::LaneWord active = ram.active_mask();
  PackedVerdict verdict;
  mem::LaneWord mismatch = 0;
  // Active lanes whose mismatch has not latched yet; a detected lane
  // is retired immediately (its verdict is final), and the run stops
  // once every active lane is retired.
  mem::LaneWord pending = active;
  std::uint64_t ops_so_far = 0;

  mem::LaneWord window_buf[16];
  std::vector<mem::LaneWord> window_spill;

  for (std::size_t i = 0; i < scheme.iterations.size(); ++i) {
    const SchemeIteration& it = scheme.iterations[i];
    const PiOracle& orc = oracle.iterations[i];
    const unsigned kk = static_cast<unsigned>(it.g.size() - 1);
    const Trajectory& traj = orc.trajectory;
    assert(traj.size() == n);
    assert(orc.fin_expected.size() == kk);
    assert(!it.config.verify_pass || orc.image.size() == n);

    mem::LaneWord* window = window_buf;
    if (kk > std::size(window_buf)) {
      window_spill.resize(kk);
      window = window_spill.data();
    }
    PackedMisr misr(use_misr ? scheme.misr_poly : gf::Poly2{0b111});

    // Initialization: broadcast the seed values to every lane.
    for (unsigned j = 0; j < kk; ++j) {
      ram.write(traj.at(j), bcast(it.config.init[j]));
    }

    // Sweep: each lane's feedback is the XOR of its own window reads
    // selected by the non-zero g coefficients (Eq. 1 over GF(2)).
    // Nothing latches during the sweep, so there is no abort point
    // inside it.
    for (mem::Addr q = 0; q + kk < n; ++q) {
      for (unsigned j = 0; j < kk; ++j) {
        window[j] = ram.read(traj.at(q + j));
        if (use_misr) misr.shift(window[j]);
      }
      mem::LaneWord fb = 0;
      for (unsigned j = 1; j <= kk; ++j) {
        if (it.g[j]) fb ^= window[kk - j];
      }
      ram.write(traj.at(q + kk), fb);
    }

    // Verdict: Fin read-back against Fin*, Init re-read against the
    // seed — any deviating lane is detected.
    for (unsigned j = 0; j < kk; ++j) {
      const mem::LaneWord raw = ram.read(traj.at(n - kk + j));
      mismatch |= raw ^ bcast(orc.fin_expected[j]);
      if (use_misr) misr.shift(raw);
    }
    for (unsigned j = 0; j < kk; ++j) {
      const mem::LaneWord raw = ram.read(traj.at(j));
      mismatch |= raw ^ bcast(it.config.init[j]);
      if (use_misr) misr.shift(raw);
    }

    if (it.config.verify_pass) {
      // No lane-compatible fault is clock-dependent, so the pause only
      // mirrors the scalar control flow.
      if (it.config.pause_ticks != 0) ram.advance_time(it.config.pause_ticks);
      for (mem::Addr a = 0; a < n; ++a) {
        mismatch |= ram.read(a) ^ bcast(orc.image[a]);
        // Once every pending lane has latched, the rest of the verify
        // pass cannot change any verdict (the latch is monotone and
        // verify reads do not feed the MISR) — skip it.  The reported
        // ops stay the scalar-equivalent complete-iteration count.
        if (options.early_abort && (pending & ~mismatch) == 0) break;
      }
    }
    if (use_misr) mismatch |= misr.mismatch(orc.misr_expected);

    ops_so_far += iteration_ops(it, n);
    if (options.early_abort) {
      // Lanes that latched this iteration ran, scalar-equivalently,
      // every iteration up to and including this one.
      const mem::LaneWord newly = pending & mismatch;
      verdict.scalar_ops +=
          static_cast<std::uint64_t>(std::popcount(newly)) * ops_so_far;
      pending &= ~mismatch;
      if (pending == 0) {
        verdict.detected = mismatch;
        return verdict;
      }
    }
  }
  // Remaining lanes (all active lanes when early_abort is off) ran the
  // complete scheme.
  const mem::LaneWord full = options.early_abort ? pending : active;
  verdict.scalar_ops +=
      static_cast<std::uint64_t>(std::popcount(full)) * ops_so_far;
  verdict.detected = mismatch;
  return verdict;
}

std::uint64_t run_prt_packed(mem::PackedFaultRam& ram,
                             const PrtScheme& scheme,
                             const PrtOracle& oracle) {
  return run_prt_packed(ram, scheme, oracle, PackedRunOptions{}).detected;
}

}  // namespace prt::core
