#include "core/prt_packed.hpp"

#include <cassert>
#include <vector>

#include "gf/gf2_poly.hpp"
#include "util/bitops.hpp"

namespace prt::core {

namespace {

/// Broadcasts one golden bit to every lane.
constexpr mem::LaneWord bcast(gf::Elem bit) {
  return bit ? ~mem::LaneWord{0} : mem::LaneWord{0};
}

/// 64 independent MISRs, bit-sliced: state bit b of all lanes lives in
/// state[b], so one shift costs O(width) lane-wide XORs instead of 64
/// scalar shifts.  Mirrors lfsr::Misr::shift exactly.
class PackedMisr {
 public:
  explicit PackedMisr(gf::Poly2 poly)
      : poly_(poly),
        width_(static_cast<unsigned>(poly_degree(poly))),
        state_(width_, 0) {}

  void shift(mem::LaneWord input) {
    const mem::LaneWord msb = state_[width_ - 1];
    for (unsigned b = width_; b-- > 1;) {
      state_[b] = state_[b - 1] ^ (((poly_ >> b) & 1U) ? msb : 0);
    }
    state_[0] = (((poly_ & 1U) != 0) ? msb : 0) ^ input;
  }

  /// Lanes whose signature differs from the golden scalar signature.
  [[nodiscard]] mem::LaneWord mismatch(std::uint64_t expected) const {
    mem::LaneWord m = 0;
    for (unsigned b = 0; b < width_; ++b) {
      m |= state_[b] ^ bcast(static_cast<gf::Elem>((expected >> b) & 1U));
    }
    return m;
  }

 private:
  gf::Poly2 poly_;
  unsigned width_;
  std::vector<mem::LaneWord> state_;
};

}  // namespace

bool prt_scheme_packable(const PrtScheme& scheme) {
  if (scheme.field_modulus != 0b11) return false;  // GF(2) only
  if (scheme.iterations.empty()) return false;
  for (const SchemeIteration& it : scheme.iterations) {
    if (it.g.size() < 2) return false;
    for (const gf::Elem c : it.g) {
      if (c > 1) return false;
    }
    if (it.config.init.size() != it.g.size() - 1) return false;
    for (const gf::Elem d : it.config.init) {
      if (d > 1) return false;
    }
  }
  return true;
}

std::uint64_t run_prt_packed(mem::PackedFaultRam& ram,
                             const PrtScheme& scheme,
                             const PrtOracle& oracle) {
  assert(prt_scheme_packable(scheme));
  assert(oracle.iterations.size() == scheme.iterations.size());
  assert(oracle.n == ram.size());
  const mem::Addr n = ram.size();
  const bool use_misr = scheme.misr_poly != 0;
  mem::LaneWord mismatch = 0;

  mem::LaneWord window_buf[16];
  std::vector<mem::LaneWord> window_spill;

  for (std::size_t i = 0; i < scheme.iterations.size(); ++i) {
    const SchemeIteration& it = scheme.iterations[i];
    const PiOracle& orc = oracle.iterations[i];
    const unsigned kk = static_cast<unsigned>(it.g.size() - 1);
    const Trajectory& traj = orc.trajectory;
    assert(traj.size() == n);
    assert(orc.fin_expected.size() == kk);
    assert(!it.config.verify_pass || orc.image.size() == n);

    mem::LaneWord* window = window_buf;
    if (kk > std::size(window_buf)) {
      window_spill.resize(kk);
      window = window_spill.data();
    }
    PackedMisr misr(use_misr ? scheme.misr_poly : gf::Poly2{0b111});

    // Initialization: broadcast the seed values to every lane.
    for (unsigned j = 0; j < kk; ++j) {
      ram.write(traj.at(j), bcast(it.config.init[j]));
    }

    // Sweep: each lane's feedback is the XOR of its own window reads
    // selected by the non-zero g coefficients (Eq. 1 over GF(2)).
    for (mem::Addr q = 0; q + kk < n; ++q) {
      for (unsigned j = 0; j < kk; ++j) {
        window[j] = ram.read(traj.at(q + j));
        if (use_misr) misr.shift(window[j]);
      }
      mem::LaneWord fb = 0;
      for (unsigned j = 1; j <= kk; ++j) {
        if (it.g[j]) fb ^= window[kk - j];
      }
      ram.write(traj.at(q + kk), fb);
    }

    // Verdict: Fin read-back against Fin*, Init re-read against the
    // seed — any deviating lane is detected.
    for (unsigned j = 0; j < kk; ++j) {
      const mem::LaneWord raw = ram.read(traj.at(n - kk + j));
      mismatch |= raw ^ bcast(orc.fin_expected[j]);
      if (use_misr) misr.shift(raw);
    }
    for (unsigned j = 0; j < kk; ++j) {
      const mem::LaneWord raw = ram.read(traj.at(j));
      mismatch |= raw ^ bcast(it.config.init[j]);
      if (use_misr) misr.shift(raw);
    }

    if (it.config.verify_pass) {
      // No lane-compatible fault is clock-dependent, so the pause only
      // mirrors the scalar control flow.
      if (it.config.pause_ticks != 0) ram.advance_time(it.config.pause_ticks);
      for (mem::Addr a = 0; a < n; ++a) {
        mismatch |= ram.read(a) ^ bcast(orc.image[a]);
      }
    }
    if (use_misr) mismatch |= misr.mismatch(orc.misr_expected);
  }
  return mismatch;
}

}  // namespace prt::core
