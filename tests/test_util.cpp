// Tests for utility components (util/*).
#include <gtest/gtest.h>

#include <set>

#include "util/bitops.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace prt {
namespace {

// --- bitops ---------------------------------------------------------------

TEST(Bitops, Parity) {
  EXPECT_EQ(parity64(0), 0u);
  EXPECT_EQ(parity64(1), 1u);
  EXPECT_EQ(parity64(0b11), 0u);
  EXPECT_EQ(parity64(~0ULL), 0u);
  EXPECT_EQ(parity64(0x8000000000000001ULL), 0u);
  EXPECT_EQ(parity64(0x8000000000000000ULL), 1u);
}

TEST(Bitops, BitOfAndWithBit) {
  EXPECT_EQ(bit_of(0b1010, 1), 1u);
  EXPECT_EQ(bit_of(0b1010, 0), 0u);
  EXPECT_EQ(with_bit(0, 3, 1), 0b1000u);
  EXPECT_EQ(with_bit(0b1111, 2, 0), 0b1011u);
}

TEST(Bitops, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(4), 0xFu);
  EXPECT_EQ(low_mask(64), ~0ULL);
}

TEST(Bitops, PolyDegree) {
  EXPECT_EQ(poly_degree(0), -1);
  EXPECT_EQ(poly_degree(1), 0);
  EXPECT_EQ(poly_degree(0b10011), 4);
  EXPECT_EQ(poly_degree(1ULL << 63), 63);
}

TEST(Bitops, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Bitops, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
}

// --- rng --------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  Xoshiro256 c(43);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool differs = false;
  Xoshiro256 a2(42);
  for (int i = 0; i < 10; ++i) differs |= a2() != c();
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RoughUniformity) {
  Xoshiro256 rng(11);
  std::array<int, 4> bucket{};
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) ++bucket[rng.below(4)];
  for (int b : bucket) {
    EXPECT_NEAR(b, draws / 4, draws / 40);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  Xoshiro256 rng(3);
  shuffle(v.begin(), v.end(), rng);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 8u);
}

// --- table ---------------------------------------------------------------

TEST(TableTest, RendersHeaderSeparatorRows) {
  Table t({"name", "value"});
  t.add("alpha", 1);
  t.add("beta", 2.5);
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.500"), std::string::npos);
  EXPECT_NE(s.find("|--"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(TableTest, AlignmentPadsCorrectly) {
  Table t({"h"});
  t.set_align(0, Align::kLeft);
  t.add_row({"x"});
  t.add_row({"xxxx"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| x    |"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.add(1, 2);
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(TableTest, BoolCells) {
  Table t({"flag"});
  t.add(true);
  t.add(false);
  const std::string s = t.str();
  EXPECT_NE(s.find("yes"), std::string::npos);
  EXPECT_NE(s.find("no"), std::string::npos);
}

TEST(TableTest, ScientificForExtremes) {
  EXPECT_NE(Table::to_cell(1e-9).find("e"), std::string::npos);
  EXPECT_NE(Table::to_cell(3.5e12).find("e"), std::string::npos);
  EXPECT_EQ(Table::to_cell(0.0), "0.000");
}

TEST(Formatting, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(100.0, 0), "100");
}

TEST(Formatting, FormatPow2Ratio) {
  EXPECT_EQ(format_pow2_ratio(0.25), "2^-2.0");
  EXPECT_EQ(format_pow2_ratio(1.0), "2^0.0");
  EXPECT_EQ(format_pow2_ratio(0.0), "0");
}

}  // namespace
}  // namespace prt
