// Tests for the word-oriented LFSR reference model (lfsr/lfsr) — the
// paper's virtual automaton.
#include "lfsr/lfsr.hpp"

#include <gtest/gtest.h>

namespace prt::lfsr {
namespace {

using gf::Elem;

TEST(Fig1a, BomSequenceMatchesPaper) {
  // g = 1 + x + x^2 over GF(2): the memory image is the period-3
  // pattern d0, d1, d0^d1 of Fig. 1a.
  WordLfsr l = fig1a_bom_lfsr();
  const std::vector<Elem> seed{1, 1};
  l.seed(seed);
  EXPECT_EQ(l.sequence(9), (std::vector<Elem>{1, 1, 0, 1, 1, 0, 1, 1, 0}));
}

TEST(Fig1a, PeriodIsThree) {
  WordLfsr l = fig1a_bom_lfsr();
  EXPECT_EQ(l.algebraic_period(), 3u);
  EXPECT_EQ(l.max_period(), 3u);
  EXPECT_TRUE(l.is_primitive());
}

TEST(Fig1b, WomSequenceMatchesPaper) {
  // Fig. 1b: cells hold 0, 1, 2, 6, ... for g = 1 + 2x + 2x^2 over
  // GF(2^4), p = 1 + z + z^4, Init = (0, 1).
  WordLfsr l = fig1b_wom_lfsr();
  const std::vector<Elem> seed{0, 1};
  l.seed(seed);
  const auto seq = l.sequence(8);
  EXPECT_EQ(seq[0], 0u);
  EXPECT_EQ(seq[1], 1u);
  EXPECT_EQ(seq[2], 2u);   // 2*1 + 2*0 = z
  EXPECT_EQ(seq[3], 6u);   // 2*2 + 2*1 = z^2 + z
  EXPECT_EQ(seq[4], 8u);   // 2*6 + 2*2 = z^3
  EXPECT_EQ(seq[5], 0xFu); // 2*8 + 2*6 = (z+1) + (z^3+z^2) = z^3+z^2+z+1
}

TEST(Fig1b, PeriodIs255AndPrimitive) {
  WordLfsr l = fig1b_wom_lfsr();
  EXPECT_EQ(l.algebraic_period(), 255u);
  EXPECT_EQ(l.max_period(), 255u);
  EXPECT_TRUE(l.is_primitive());
  EXPECT_TRUE(l.is_irreducible());
}

TEST(Fig1b, RingClosesAfterPeriodSteps) {
  WordLfsr l = fig1b_wom_lfsr();
  const std::vector<Elem> seed{0, 1};
  l.seed(seed);
  EXPECT_EQ(l.cycle_length(), std::optional<std::uint64_t>{255});
}

TEST(WordLfsr, StepMatchesFeedbackOfState) {
  WordLfsr l = fig1b_wom_lfsr();
  const std::vector<Elem> seed{7, 9};
  l.seed(seed);
  for (int i = 0; i < 50; ++i) {
    const Elem fb = l.feedback(l.state());
    EXPECT_EQ(l.step(), fb);
  }
}

TEST(WordLfsr, SequenceSatisfiesRecurrence) {
  WordLfsr l = fig1b_wom_lfsr();
  const gf::GF2m& f = l.field();
  const std::vector<Elem> seed{3, 12};
  l.seed(seed);
  const auto s = l.sequence(100);
  for (std::size_t i = 2; i < s.size(); ++i) {
    EXPECT_EQ(s[i], f.add(f.mul(2, s[i - 1]), f.mul(2, s[i - 2])));
  }
}

TEST(WordLfsr, ZeroStateStaysZero) {
  WordLfsr l = fig1b_wom_lfsr();
  const std::vector<Elem> seed{0, 0};
  l.seed(seed);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(l.step(), 0u);
}

TEST(WordLfsr, DefaultSeedIsNonDegenerate) {
  WordLfsr l = fig1b_wom_lfsr();
  bool any_nonzero = false;
  for (int i = 0; i < 5; ++i) any_nonzero |= l.step() != 0;
  EXPECT_TRUE(any_nonzero);
}

TEST(WordLfsr, CycleLengthDividesAlgebraicPeriod) {
  // For an irreducible g every non-zero state lies on one cycle whose
  // length is exactly the algebraic period.
  WordLfsr l = fig1b_wom_lfsr();
  for (Elem a : {1u, 5u, 9u}) {
    const std::vector<Elem> seed{a, static_cast<Elem>(15 - a)};
    l.seed(seed);
    EXPECT_EQ(l.cycle_length().value(), l.algebraic_period());
  }
}

TEST(WordLfsr, CheckerboardCycleLengthIsTwo) {
  WordLfsr l(gf::GF2m(0b10011), {1, 0, 1});
  const std::vector<Elem> seed{0, 15};
  l.seed(seed);
  EXPECT_EQ(l.cycle_length().value(), 2u);
  EXPECT_EQ(l.algebraic_period(), 2u);
  EXPECT_FALSE(l.is_primitive());
}

TEST(WordLfsr, DegreeThreeGenerator) {
  // g = 1 + x + x^3 over GF(2), primitive, period 7.
  WordLfsr l(gf::GF2m(0b11), {1, 1, 0, 1});
  EXPECT_EQ(l.k(), 3u);
  EXPECT_EQ(l.algebraic_period(), 7u);
  const std::vector<Elem> seed{1, 0, 0};
  l.seed(seed);
  EXPECT_EQ(l.cycle_length().value(), 7u);
}

TEST(TransitionMatrix, OneStepAgreesWithStep) {
  WordLfsr l = fig1b_wom_lfsr();
  const gf::MatrixGF2 t = l.transition_matrix_gf2();
  const std::vector<Elem> seed{11, 4};
  l.seed(seed);
  const std::uint64_t packed = l.pack_state(l.state());
  WordLfsr stepped = l;
  stepped.step();
  EXPECT_EQ(t.mul_vec64(packed), stepped.pack_state(stepped.state()));
}

TEST(TransitionMatrix, MatrixOrderEqualsPeriod) {
  WordLfsr l = fig1a_bom_lfsr();
  const gf::MatrixGF2 t = l.transition_matrix_gf2();
  EXPECT_TRUE(t.pow(3).is_identity());
  EXPECT_FALSE(t.pow(1).is_identity());
  EXPECT_FALSE(t.pow(2).is_identity());
}

TEST(TransitionMatrix, Fig1bMatrixOrderIs255) {
  WordLfsr l = fig1b_wom_lfsr();
  const gf::MatrixGF2 t = l.transition_matrix_gf2();
  EXPECT_TRUE(t.pow(255).is_identity());
  EXPECT_FALSE(t.pow(85).is_identity());
  EXPECT_FALSE(t.pow(51).is_identity());
}

TEST(Jump, MatchesNaiveStepping) {
  for (std::uint64_t t : {0ULL, 1ULL, 2ULL, 17ULL, 254ULL, 255ULL, 1000ULL}) {
    WordLfsr jumped = fig1b_wom_lfsr();
    WordLfsr stepped = fig1b_wom_lfsr();
    const std::vector<Elem> seed{0, 1};
    jumped.seed(seed);
    stepped.seed(seed);
    jumped.jump(t);
    for (std::uint64_t i = 0; i < t; ++i) stepped.step();
    EXPECT_EQ(std::vector<Elem>(jumped.state().begin(), jumped.state().end()),
              std::vector<Elem>(stepped.state().begin(),
                                stepped.state().end()))
        << "t=" << t;
  }
}

TEST(Jump, LargeJumpUsesPeriodicity) {
  WordLfsr a = fig1b_wom_lfsr();
  WordLfsr b = fig1b_wom_lfsr();
  const std::vector<Elem> seed{2, 6};
  a.seed(seed);
  b.seed(seed);
  a.jump(1'000'000'007ULL);
  b.jump(1'000'000'007ULL % 255);
  EXPECT_EQ(std::vector<Elem>(a.state().begin(), a.state().end()),
            std::vector<Elem>(b.state().begin(), b.state().end()));
}

TEST(PackState, RoundTrip) {
  WordLfsr l = fig1b_wom_lfsr();
  const std::vector<Elem> s{0xA, 0x5};
  EXPECT_EQ(l.unpack_state(l.pack_state(s)), s);
  EXPECT_EQ(l.pack_state(s), 0x5Au);  // element 0 in low bits
}

TEST(MaxPeriod, QKMinusOne) {
  EXPECT_EQ(fig1a_bom_lfsr().max_period(), 3u);
  EXPECT_EQ(fig1b_wom_lfsr().max_period(), 255u);
  WordLfsr l(gf::GF2m::standard(8), {1, 1, 1});
  EXPECT_EQ(l.max_period(), 65535u);
}

TEST(Sequence, FirstKElementsAreTheSeed) {
  WordLfsr l = fig1b_wom_lfsr();
  const std::vector<Elem> seed{9, 3};
  l.seed(seed);
  const auto s = l.sequence(2);
  EXPECT_EQ(s, seed);
}

}  // namespace
}  // namespace prt::lfsr
